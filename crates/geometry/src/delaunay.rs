//! Incremental Bowyer–Watson Delaunay triangulation with walk-based point
//! location.
//!
//! The paper's FRA (Table 1) refines a triangulation one vertex at a
//! time — "when node D is selected to add in Δ ABC, Delaunay rules
//! re-triangulate ABCD" (Fig. 2) — so the structure here is fully
//! incremental: each [`Triangulation::insert`] carves the Bowyer–Watson
//! cavity and retriangulates it, maintaining triangle adjacency so that
//! point location is a short walk rather than a scan.

use std::collections::HashMap;

use crate::predicates::{in_circumcircle, orient2d};
use crate::{GeometryError, Point2, Rect, Triangle};

/// Identifier of a vertex inserted into a [`Triangulation`].
///
/// Ids are dense and assigned in insertion order starting from zero, so
/// they double as indices into caller-side parallel arrays (for example
/// the sampled `z` values handed to [`Triangulation::interpolate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub usize);

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Number of synthetic super-triangle vertices stored before real ones.
const SUPER_VERTS: usize = 3;

#[derive(Debug, Clone)]
struct Tri {
    /// Vertex indices (into the internal vertex array), counterclockwise.
    v: [usize; 3],
    /// `neighbors[i]` is the triangle opposite `v[i]`, i.e. across the
    /// edge `(v[i+1], v[i+2])`.
    neighbors: [Option<usize>; 3],
    alive: bool,
}

/// An incremental Delaunay triangulation of points inside a bounding
/// region.
///
/// # Example
///
/// ```
/// use cps_geometry::{Point2, Rect, Triangulation};
///
/// let region = Rect::square(10.0).unwrap();
/// let mut dt = Triangulation::new(region);
/// for p in [
///     Point2::new(0.0, 0.0),
///     Point2::new(10.0, 0.0),
///     Point2::new(10.0, 10.0),
///     Point2::new(0.0, 10.0),
///     Point2::new(3.0, 4.0),
/// ] {
///     dt.insert(p).unwrap();
/// }
/// // Interpolate the plane z = x over the triangulation:
/// let zs: Vec<f64> = dt.vertices().map(|p| p.x).collect();
/// let z = dt.interpolate(Point2::new(5.0, 5.0), &zs).unwrap();
/// assert!((z - 5.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Triangulation {
    bounds: Rect,
    /// All vertices; the first [`SUPER_VERTS`] belong to the synthetic
    /// super-triangle and are never reported.
    vertices: Vec<Point2>,
    tris: Vec<Tri>,
    /// Walk start hint (index of the alive triangle most recently
    /// created by [`Triangulation::insert`]). Updated only under
    /// `&mut self`, which keeps the structure `Sync` for the parallel
    /// evaluation engine; query-side warm starts use [`LocateCursor`].
    hint: usize,
    /// Minimum distance between distinct vertices.
    dup_tolerance: f64,
    /// Bounding box of the triangles created by the most recent insert.
    last_insert_bbox: Option<(Point2, Point2)>,
}

impl Triangulation {
    /// Creates an empty triangulation able to hold points within
    /// `bounds`.
    ///
    /// The duplicate-vertex tolerance defaults to `1e-9` times the larger
    /// side of `bounds`.
    pub fn new(bounds: Rect) -> Self {
        let span = bounds.width().max(bounds.height());
        let c = bounds.center();
        // A super-triangle comfortably enclosing the region; far enough
        // out that border artefacts are negligible, close enough that
        // the incircle determinant keeps precision.
        let s = 40.0 * span;
        let sv = [
            Point2::new(c.x - s, c.y - 0.5 * s),
            Point2::new(c.x + s, c.y - 0.5 * s),
            Point2::new(c.x, c.y + s),
        ];
        debug_assert!(orient2d(sv[0], sv[1], sv[2]) > 0.0);
        let tris = vec![Tri {
            v: [0, 1, 2],
            neighbors: [None, None, None],
            alive: true,
        }];
        Triangulation {
            bounds,
            vertices: sv.to_vec(),
            tris,
            hint: 0,
            dup_tolerance: 1e-9 * span,
            last_insert_bbox: None,
        }
    }

    /// Builds a triangulation by inserting `points` in order.
    ///
    /// # Errors
    ///
    /// Propagates the first insertion error (out-of-bounds, duplicate, or
    /// non-finite point).
    pub fn from_points<I>(bounds: Rect, points: I) -> Result<Self, GeometryError>
    where
        I: IntoIterator<Item = Point2>,
    {
        let mut dt = Triangulation::new(bounds);
        for p in points {
            dt.insert(p)?;
        }
        Ok(dt)
    }

    /// The bounding region supplied at construction.
    #[inline]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Number of real (caller-inserted) vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertices.len() - SUPER_VERTS
    }

    /// Position of a vertex.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn vertex(&self, id: VertexId) -> Point2 {
        self.vertices[id.0 + SUPER_VERTS]
    }

    /// Iterates over real vertices in insertion order.
    pub fn vertices(&self) -> impl Iterator<Item = Point2> + '_ {
        self.vertices.iter().skip(SUPER_VERTS).copied()
    }

    /// Triangles among real vertices, as triples of [`VertexId`] in
    /// counterclockwise order. Triangles incident to the synthetic
    /// super-triangle are omitted.
    pub fn triangles(&self) -> Vec<[VertexId; 3]> {
        self.tris
            .iter()
            .filter(|t| t.alive && t.v.iter().all(|&v| v >= SUPER_VERTS))
            .map(|t| {
                [
                    VertexId(t.v[0] - SUPER_VERTS),
                    VertexId(t.v[1] - SUPER_VERTS),
                    VertexId(t.v[2] - SUPER_VERTS),
                ]
            })
            .collect()
    }

    /// Number of real triangles (those not touching the super-triangle).
    pub fn triangle_count(&self) -> usize {
        self.tris
            .iter()
            .filter(|t| t.alive && t.v.iter().all(|&v| v >= SUPER_VERTS))
            .count()
    }

    /// Undirected edges among real vertices, each reported once with
    /// the smaller id first, in sorted order.
    pub fn edges(&self) -> Vec<(VertexId, VertexId)> {
        let mut set = std::collections::BTreeSet::new();
        for tri in self.triangles() {
            for i in 0..3 {
                let a = tri[i].0;
                let b = tri[(i + 1) % 3].0;
                set.insert((a.min(b), a.max(b)));
            }
        }
        set.into_iter()
            .map(|(a, b)| (VertexId(a), VertexId(b)))
            .collect()
    }

    /// The Delaunay neighbors of a vertex (ids sharing an edge with
    /// it), ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn vertex_neighbors(&self, id: VertexId) -> Vec<VertexId> {
        assert!(id.0 < self.vertex_count(), "vertex id out of range");
        let mut set = std::collections::BTreeSet::new();
        for tri in self.triangles() {
            if let Some(k) = tri.iter().position(|&v| v == id) {
                set.insert(tri[(k + 1) % 3].0);
                set.insert(tri[(k + 2) % 3].0);
            }
        }
        set.into_iter().map(VertexId).collect()
    }

    /// Geometry of a triangle triple reported by
    /// [`Triangulation::triangles`].
    pub fn triangle_geometry(&self, tri: [VertexId; 3]) -> Triangle {
        Triangle::new(
            self.vertex(tri[0]),
            self.vertex(tri[1]),
            self.vertex(tri[2]),
        )
    }

    /// Visits every real triangle with its vertex triple and geometry,
    /// without materializing the `Vec` that [`Triangulation::triangles`]
    /// snapshots.
    ///
    /// Dirty-triangle differs (the incremental δ tile cache) walk both
    /// the previous and the current triangulation on every refresh, so
    /// the visitor form keeps that path allocation-free.
    pub fn for_each_triangle<F: FnMut([VertexId; 3], Triangle)>(&self, mut f: F) {
        for t in self
            .tris
            .iter()
            .filter(|t| t.alive && t.v.iter().all(|&v| v >= SUPER_VERTS))
        {
            let tri = [
                VertexId(t.v[0] - SUPER_VERTS),
                VertexId(t.v[1] - SUPER_VERTS),
                VertexId(t.v[2] - SUPER_VERTS),
            ];
            f(tri, self.triangle_geometry(tri));
        }
    }

    /// Bounding box of the cavity retriangulated by the most recent
    /// successful [`Triangulation::insert`], if any.
    ///
    /// The paper's FRA uses this to update local errors only where "new
    /// triangles \[were\] generated" (Table 1, line 11) rather than over
    /// the whole region.
    #[inline]
    pub fn last_insert_bbox(&self) -> Option<(Point2, Point2)> {
        self.last_insert_bbox
    }

    /// Inserts a point and restores the Delaunay property.
    ///
    /// Returns the new vertex's id (dense, insertion-ordered).
    ///
    /// # Errors
    ///
    /// * [`GeometryError::NonFiniteCoordinate`] — `p` has NaN/∞.
    /// * [`GeometryError::OutOfBounds`] — `p` outside the bounding region.
    /// * [`GeometryError::DuplicatePoint`] — `p` within tolerance of an
    ///   existing vertex.
    pub fn insert(&mut self, p: Point2) -> Result<VertexId, GeometryError> {
        if !p.is_finite() {
            return Err(GeometryError::NonFiniteCoordinate);
        }
        if !self.bounds.contains(p) {
            return Err(GeometryError::OutOfBounds { point: p });
        }
        let start = self
            .locate_alive(p)
            .expect("point inside bounds is inside the super-triangle");

        // --- Bowyer–Watson cavity search ------------------------------
        let mut bad: Vec<usize> = Vec::new();
        let mut in_cavity: HashMap<usize, bool> = HashMap::new();
        let mut stack = vec![start];
        in_cavity.insert(start, true);
        while let Some(t) = stack.pop() {
            bad.push(t);
            for i in 0..3 {
                if let Some(n) = self.tris[t].neighbors[i] {
                    if in_cavity.contains_key(&n) {
                        continue;
                    }
                    let is_bad = self.cavity_test(n, p);
                    in_cavity.insert(n, is_bad);
                    if is_bad {
                        stack.push(n);
                    }
                }
            }
        }

        // Duplicate check against every cavity vertex (a coincident
        // vertex is necessarily incident to a cavity triangle).
        for &t in &bad {
            for &v in &self.tris[t].v {
                if self.vertices[v].distance(p) <= self.dup_tolerance {
                    return Err(GeometryError::DuplicatePoint { point: p });
                }
            }
        }

        // --- collect boundary edges (CCW around the cavity) -----------
        // Each boundary edge is (a, b, outer neighbor).
        let mut boundary: Vec<(usize, usize, Option<usize>)> = Vec::new();
        for &t in &bad {
            for i in 0..3 {
                let n = self.tris[t].neighbors[i];
                let n_in_cavity = n.map(|n| in_cavity.get(&n) == Some(&true)).unwrap_or(false);
                if !n_in_cavity {
                    let a = self.tris[t].v[(i + 1) % 3];
                    let b = self.tris[t].v[(i + 2) % 3];
                    boundary.push((a, b, n));
                }
            }
        }

        // --- retriangulate ---------------------------------------------
        let new_vertex = self.vertices.len();
        self.vertices.push(p);
        for &t in &bad {
            self.tris[t].alive = false;
        }

        // Map from the spoke edge (new_vertex, x) to the triangle that
        // owns it, to stitch adjacent fan triangles together.
        let mut spoke: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
        let mut bbox_min = Point2::new(f64::INFINITY, f64::INFINITY);
        let mut bbox_max = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);

        for &(a, b, outer) in &boundary {
            let idx = self.tris.len();
            // CCW: boundary edges are oriented so the cavity interior
            // (and hence p) lies to their left.
            debug_assert!(
                orient2d(self.vertices[a], self.vertices[b], p) > -1e-12,
                "cavity boundary edge not CCW with respect to inserted point"
            );
            self.tris.push(Tri {
                v: [a, b, new_vertex],
                // neighbors[0] opposite a: edge (b, new_vertex)
                // neighbors[1] opposite b: edge (new_vertex, a)
                // neighbors[2] opposite new_vertex: edge (a, b) = outer
                neighbors: [None, None, outer],
                alive: true,
            });
            // Fix the outer triangle's back-pointer.
            if let Some(o) = outer {
                for i in 0..3 {
                    if let Some(on) = self.tris[o].neighbors[i] {
                        if !self.tris[on].alive {
                            // This slot pointed into the cavity across
                            // edge (a, b); repoint it at the new triangle.
                            let oa = self.tris[o].v[(i + 1) % 3];
                            let ob = self.tris[o].v[(i + 2) % 3];
                            if (oa == b && ob == a) || (oa == a && ob == b) {
                                self.tris[o].neighbors[i] = Some(idx);
                            }
                        }
                    }
                }
            }
            // Stitch fan spokes: edge (b, new_vertex) pairs with some
            // other fan triangle's edge (new_vertex, b).
            for (key, slot) in [((b, new_vertex), 0usize), ((new_vertex, a), 1usize)] {
                let canon = (key.0.min(key.1), key.0.max(key.1));
                match spoke.remove(&canon) {
                    Some((other_idx, other_slot)) => {
                        self.tris[idx].neighbors[slot] = Some(other_idx);
                        self.tris[other_idx].neighbors[other_slot] = Some(idx);
                    }
                    None => {
                        spoke.insert(canon, (idx, slot));
                    }
                }
            }
            for q in [self.vertices[a], self.vertices[b], p] {
                bbox_min = Point2::new(bbox_min.x.min(q.x), bbox_min.y.min(q.y));
                bbox_max = Point2::new(bbox_max.x.max(q.x), bbox_max.y.max(q.y));
            }
        }
        debug_assert!(spoke.is_empty(), "unmatched fan spokes after insertion");

        self.hint = self.tris.len() - 1;
        self.last_insert_bbox = Some((bbox_min, bbox_max));
        cps_obs::count(cps_obs::Counter::DelaunayInserts);
        Ok(VertexId(new_vertex - SUPER_VERTS))
    }

    /// Decides whether triangle `t` belongs to the Bowyer–Watson cavity
    /// of a new point `p`.
    ///
    /// Triangles among real vertices use the standard in-circumcircle
    /// test. Triangles incident to the synthetic super-triangle ("ghost"
    /// triangles) must *not* use their finite circumcircle — that is the
    /// classic finite-super-triangle artefact which swallows thin hull
    /// triangles. Instead a ghost with real edge `(a, b)` is treated as
    /// having its circumcircle degenerate to the open half-plane beyond
    /// the hull edge: it joins the cavity iff `p` is strictly beyond the
    /// edge (visibility) or lies *on* the edge segment (so the hull edge
    /// is split rather than producing a degenerate triangle).
    fn cavity_test(&self, t: usize, p: Point2) -> bool {
        let tv = self.tris[t].v;
        let supers = tv.iter().filter(|&&v| v < SUPER_VERTS).count();
        match supers {
            0 => in_circumcircle(
                self.vertices[tv[0]],
                self.vertices[tv[1]],
                self.vertices[tv[2]],
                p,
            ),
            1 => {
                // Rotate so the super vertex is last: real edge (a, b)
                // keeps the triangle's CCW order.
                let s = tv.iter().position(|&v| v < SUPER_VERTS).expect("super");
                let a = self.vertices[tv[(s + 1) % 3]];
                let b = self.vertices[tv[(s + 2) % 3]];
                let orient = orient2d(a, b, p);
                let span = self.bounds.width().max(self.bounds.height());
                let tol = 1e-12 * span * span;
                if orient > tol {
                    // p strictly beyond the hull edge: the ghost is
                    // visible from p.
                    true
                } else if orient >= -tol {
                    // Collinear: only split when p lies within the edge
                    // segment (not merely on the supporting line).
                    let lo_x = a.x.min(b.x) - self.dup_tolerance;
                    let hi_x = a.x.max(b.x) + self.dup_tolerance;
                    let lo_y = a.y.min(b.y) - self.dup_tolerance;
                    let hi_y = a.y.max(b.y) + self.dup_tolerance;
                    p.x >= lo_x && p.x <= hi_x && p.y >= lo_y && p.y <= hi_y
                } else {
                    false
                }
            }
            // Ghosts with two or three super vertices join the cavity
            // only by containing p (the force-include at the start of
            // the search), never through this test.
            _ => false,
        }
    }

    /// Walks to the alive triangle containing `p` (including triangles
    /// incident to the super-triangle), starting from the insert-side
    /// hint. Returns `None` only when `p` escapes the super-triangle,
    /// which cannot happen for in-bounds points.
    fn locate_alive(&self, p: Point2) -> Option<usize> {
        self.locate_alive_from(self.hint, p)
    }

    /// Walk core shared by [`Triangulation::locate`] and the cached
    /// [`Triangulation::locate_with`] path. `start` may be stale (dead
    /// or out of range); the walk then restarts from the most recently
    /// created alive triangle.
    fn locate_alive_from(&self, start: usize, p: Point2) -> Option<usize> {
        let mut t = start;
        if t >= self.tris.len() || !self.tris[t].alive {
            t = self.tris.iter().rposition(|t| t.alive)?;
        }
        let mut steps = 0usize;
        let max_steps = 4 * self.tris.len() + 16;
        'walk: while steps < max_steps {
            steps += 1;
            let tri = &self.tris[t];
            for i in 0..3 {
                let a = self.vertices[tri.v[(i + 1) % 3]];
                let b = self.vertices[tri.v[(i + 2) % 3]];
                if orient2d(a, b, p) < -1e-12 {
                    match tri.neighbors[i] {
                        Some(n) if self.tris[n].alive => {
                            t = n;
                            continue 'walk;
                        }
                        Some(_) | None => return None,
                    }
                }
            }
            return Some(t);
        }
        // Degenerate walk (should not happen): fall back to a scan.
        self.tris.iter().position(|tri| {
            tri.alive
                && Triangle::new(
                    self.vertices[tri.v[0]],
                    self.vertices[tri.v[1]],
                    self.vertices[tri.v[2]],
                )
                .contains(p)
        })
    }

    /// Builds a read-only point-location accelerator for the current
    /// triangulation: a uniform bucket grid over the bounding region
    /// whose cells hold a nearby alive triangle (seeded from triangle
    /// circumcenters), so a cold lookup starts its walk O(1) triangles
    /// away instead of walking across the whole structure.
    ///
    /// The cache is a snapshot: it stays *valid* after further
    /// [`Triangulation::insert`] calls (stale seeds are detected and
    /// recovered from), but lookups gradually lose their O(1) warm
    /// start, so rebuild it after a batch of insertions.
    pub fn locate_cache(&self) -> LocateCache {
        let bounds = self.bounds;
        let mut entries: Vec<(usize, Point2)> = Vec::new();
        for (idx, tri) in self.tris.iter().enumerate() {
            if !tri.alive || tri.v.iter().any(|&v| v < SUPER_VERTS) {
                continue;
            }
            let geom = Triangle::new(
                self.vertices[tri.v[0]],
                self.vertices[tri.v[1]],
                self.vertices[tri.v[2]],
            );
            // Circumcenters of sliver triangles can land far outside
            // the region; clamp (or fall back to the centroid) so every
            // seed maps to a bucket.
            let seed = match geom.circumcircle() {
                Some((center, _)) if bounds.contains(center) => center,
                _ => geom.centroid(),
            };
            entries.push((idx, bounds.clamp(seed)));
        }
        let per_side = ((entries.len().max(1) as f64).sqrt().ceil() as usize).clamp(1, 128);
        let mut cache = LocateCache {
            bounds,
            nx: per_side,
            ny: per_side,
            seeds: vec![usize::MAX; per_side * per_side],
        };
        // Keep, per bucket, the seed nearest the bucket center.
        let mut best = vec![f64::INFINITY; cache.seeds.len()];
        for &(idx, at) in &entries {
            let b = cache.bucket_of(at);
            let d = cache.bucket_center(b).distance_squared(at);
            if d < best[b] {
                best[b] = d;
                cache.seeds[b] = idx;
            }
        }
        cache.fill_empty_buckets();
        cache
    }

    /// Point location through a [`LocateCache`] and per-caller
    /// [`LocateCursor`]: behaves like [`Triangulation::locate`] but
    /// starts the walk from the cursor's last triangle (or the cache
    /// bucket seed on a cold cursor), making repeated nearby queries
    /// O(1) amortized. Safe to use from many threads, each with its own
    /// cursor.
    pub fn locate_with(
        &self,
        cache: &LocateCache,
        cursor: &mut LocateCursor,
        p: Point2,
    ) -> Option<[VertexId; 3]> {
        let start = cursor
            .last
            .filter(|&t| t < self.tris.len() && self.tris[t].alive)
            .unwrap_or_else(|| cache.seed(p));
        let t = self.locate_alive_from(start, p)?;
        cursor.last = Some(t);
        let tri = &self.tris[t];
        if tri.v.iter().any(|&v| v < SUPER_VERTS) {
            return None;
        }
        Some([
            VertexId(tri.v[0] - SUPER_VERTS),
            VertexId(tri.v[1] - SUPER_VERTS),
            VertexId(tri.v[2] - SUPER_VERTS),
        ])
    }

    /// Cached-lookup variant of [`Triangulation::interpolate`]; see
    /// [`Triangulation::locate_with`] for the cache/cursor contract.
    pub fn interpolate_with(
        &self,
        cache: &LocateCache,
        cursor: &mut LocateCursor,
        p: Point2,
        z: &[f64],
    ) -> Option<f64> {
        if z.len() < self.vertex_count() {
            return None;
        }
        let tri = self.locate_with(cache, cursor, p)?;
        let geom = self.triangle_geometry(tri);
        geom.interpolate(p, [z[tri[0].0], z[tri[1].0], z[tri[2].0]])
    }

    /// Finds the real triangle containing `p`, or `None` when `p` falls
    /// outside the convex hull of the inserted vertices (i.e. its
    /// containing triangle touches the super-triangle).
    pub fn locate(&self, p: Point2) -> Option<[VertexId; 3]> {
        let t = self.locate_alive(p)?;
        let tri = &self.tris[t];
        if tri.v.iter().any(|&v| v < SUPER_VERTS) {
            return None;
        }
        Some([
            VertexId(tri.v[0] - SUPER_VERTS),
            VertexId(tri.v[1] - SUPER_VERTS),
            VertexId(tri.v[2] - SUPER_VERTS),
        ])
    }

    /// Piecewise-linear interpolation of per-vertex values at `p`: the
    /// surface `z* = DT(x, y)` of the paper.
    ///
    /// `z[i]` is the value at `VertexId(i)`. Returns `None` when `p`
    /// falls outside the convex hull of the inserted vertices or when
    /// `z` is shorter than the vertex count.
    pub fn interpolate(&self, p: Point2, z: &[f64]) -> Option<f64> {
        if z.len() < self.vertex_count() {
            return None;
        }
        let tri = self.locate(p)?;
        let geom = self.triangle_geometry(tri);
        geom.interpolate(p, [z[tri[0].0], z[tri[1].0], z[tri[2].0]])
    }

    /// Nearest inserted vertex to `p`, by linear scan (used as a
    /// fallback for out-of-hull queries).
    pub fn nearest_vertex(&self, p: Point2) -> Option<VertexId> {
        (0..self.vertex_count()).map(VertexId).min_by(|&a, &b| {
            self.vertex(a)
                .distance_squared(p)
                .partial_cmp(&self.vertex(b).distance_squared(p))
                .expect("finite distances compare")
        })
    }

    /// Verifies the Delaunay empty-circumcircle property over all real
    /// triangles and vertices (O(T·V) — intended for tests).
    ///
    /// `slack` loosens the check to tolerate floating-point noise;
    /// cocircular configurations pass.
    pub fn is_delaunay(&self, slack: f64) -> bool {
        let verts: Vec<Point2> = self.vertices().collect();
        for tri in self.triangles() {
            let geom = self.triangle_geometry(tri);
            let Some((center, r2)) = geom.circumcircle() else {
                return false;
            };
            let r = r2.sqrt();
            for (i, &v) in verts.iter().enumerate() {
                if tri.iter().any(|id| id.0 == i) {
                    continue;
                }
                if center.distance(v) < r - slack.max(1e-9 * r) {
                    return false;
                }
            }
        }
        true
    }
}

/// Per-caller warm-start state for cached point location.
///
/// Consecutive queries from one cursor walk from the previously located
/// triangle, which is O(1) when queries are spatially coherent (for
/// example scanning a grid row). Each thread of a parallel sweep owns
/// its own cursor; the [`Triangulation`] and [`LocateCache`] are shared
/// immutably.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocateCursor {
    last: Option<usize>,
}

impl LocateCursor {
    /// A cold cursor; the first query seeds from the [`LocateCache`].
    pub fn new() -> Self {
        LocateCursor::default()
    }
}

/// Read-only point-location accelerator built by
/// [`Triangulation::locate_cache`].
///
/// A uniform bucket grid over the triangulation's bounding region; each
/// bucket stores the index of an alive triangle whose circumcenter
/// (centroid for degenerate triangles) falls nearest the bucket center.
/// Cold lookups walk from the seed of the query's bucket instead of
/// from a global hint, making point location O(1) amortized during
/// quadrature sweeps.
#[derive(Debug, Clone)]
pub struct LocateCache {
    bounds: Rect,
    nx: usize,
    ny: usize,
    /// Seed triangle index per bucket; `usize::MAX` marks a bucket that
    /// could not be filled (empty triangulation).
    seeds: Vec<usize>,
}

impl LocateCache {
    /// Bucket index containing `p` (clamped to the region).
    fn bucket_of(&self, p: Point2) -> usize {
        let fx = (p.x - self.bounds.min().x) / self.bounds.width().max(f64::MIN_POSITIVE);
        let fy = (p.y - self.bounds.min().y) / self.bounds.height().max(f64::MIN_POSITIVE);
        let cx = ((fx * self.nx as f64) as isize).clamp(0, self.nx as isize - 1) as usize;
        let cy = ((fy * self.ny as f64) as isize).clamp(0, self.ny as isize - 1) as usize;
        cy * self.nx + cx
    }

    /// Center point of bucket `b`.
    fn bucket_center(&self, b: usize) -> Point2 {
        let (cx, cy) = (b % self.nx, b / self.nx);
        Point2::new(
            self.bounds.min().x + (cx as f64 + 0.5) / self.nx as f64 * self.bounds.width(),
            self.bounds.min().y + (cy as f64 + 0.5) / self.ny as f64 * self.bounds.height(),
        )
    }

    /// Seed triangle for a query at `p`; `usize::MAX` when the cache is
    /// empty (the walk then falls back to its own recovery path).
    fn seed(&self, p: Point2) -> usize {
        self.seeds[self.bucket_of(p)]
    }

    /// Propagates seeds into empty buckets from their filled neighbors
    /// (multi-pass flood) so every bucket has a walk start.
    fn fill_empty_buckets(&mut self) {
        loop {
            let mut changed = false;
            for b in 0..self.seeds.len() {
                if self.seeds[b] != usize::MAX {
                    continue;
                }
                let (cx, cy) = (b % self.nx, b / self.nx);
                let neighbors = [
                    (cx > 0).then(|| b - 1),
                    (cx + 1 < self.nx).then(|| b + 1),
                    (cy > 0).then(|| b - self.nx),
                    (cy + 1 < self.ny).then(|| b + self.nx),
                ];
                for n in neighbors.into_iter().flatten() {
                    if self.seeds[n] != usize::MAX {
                        self.seeds[b] = self.seeds[n];
                        changed = true;
                        break;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_dt(side: f64) -> Triangulation {
        let bounds = Rect::square(side).unwrap();
        let mut dt = Triangulation::new(bounds);
        for c in bounds.corners() {
            dt.insert(c).unwrap();
        }
        dt
    }

    #[test]
    fn four_corners_make_two_triangles() {
        let dt = square_dt(10.0);
        assert_eq!(dt.vertex_count(), 4);
        assert_eq!(dt.triangle_count(), 2);
        // Total area equals the square's area.
        let area: f64 = dt
            .triangles()
            .iter()
            .map(|&t| dt.triangle_geometry(t).area())
            .sum();
        assert!((area - 100.0).abs() < 1e-9);
    }

    #[test]
    fn insertion_preserves_area_and_delaunay() {
        let mut dt = square_dt(100.0);
        let pts = [
            (13.0, 42.0),
            (77.0, 18.0),
            (50.0, 50.0),
            (91.5, 88.0),
            (10.0, 90.0),
            (60.0, 30.0),
            (30.0, 60.0),
            (85.0, 55.0),
        ];
        for (x, y) in pts {
            dt.insert(Point2::new(x, y)).unwrap();
            let area: f64 = dt
                .triangles()
                .iter()
                .map(|&t| dt.triangle_geometry(t).area())
                .sum();
            assert!((area - 10_000.0).abs() < 1e-6, "area drifted: {area}");
            assert!(dt.is_delaunay(1e-9));
        }
        assert_eq!(dt.vertex_count(), 12);
    }

    #[test]
    fn rejects_bad_inserts() {
        let mut dt = square_dt(10.0);
        assert!(matches!(
            dt.insert(Point2::new(11.0, 5.0)),
            Err(GeometryError::OutOfBounds { .. })
        ));
        assert!(matches!(
            dt.insert(Point2::new(0.0, 0.0)),
            Err(GeometryError::DuplicatePoint { .. })
        ));
        assert!(matches!(
            dt.insert(Point2::new(f64::NAN, 1.0)),
            Err(GeometryError::NonFiniteCoordinate)
        ));
        // Failed inserts leave the structure intact.
        assert_eq!(dt.vertex_count(), 4);
        assert!(dt.is_delaunay(1e-9));
    }

    #[test]
    fn locate_finds_containing_triangle() {
        let mut dt = square_dt(10.0);
        dt.insert(Point2::new(5.0, 5.0)).unwrap();
        let p = Point2::new(2.0, 2.0);
        let tri = dt.locate(p).unwrap();
        assert!(dt.triangle_geometry(tri).contains(p));
    }

    #[test]
    fn interpolation_is_exact_for_planes() {
        let mut dt = square_dt(10.0);
        for (x, y) in [(3.0, 7.0), (6.0, 2.0), (8.0, 8.0)] {
            dt.insert(Point2::new(x, y)).unwrap();
        }
        let f = |p: Point2| 3.0 * p.x - 2.0 * p.y + 1.0;
        let zs: Vec<f64> = dt.vertices().map(f).collect();
        for p in [
            Point2::new(1.0, 1.0),
            Point2::new(5.0, 5.0),
            Point2::new(9.9, 0.1),
        ] {
            let z = dt.interpolate(p, &zs).unwrap();
            assert!((z - f(p)).abs() < 1e-9, "at {p}: {z} vs {}", f(p));
        }
    }

    #[test]
    fn interpolate_rejects_short_value_slice() {
        let dt = square_dt(10.0);
        assert!(dt.interpolate(Point2::new(5.0, 5.0), &[1.0, 2.0]).is_none());
    }

    #[test]
    fn point_on_shared_edge_inserts_cleanly() {
        let mut dt = square_dt(10.0);
        // The diagonal (0,0)-(10,10) is a shared edge of the two initial
        // triangles; inserting on it exercises the two-triangle cavity.
        dt.insert(Point2::new(5.0, 5.0)).unwrap();
        assert_eq!(dt.triangle_count(), 4);
        assert!(dt.is_delaunay(1e-9));
    }

    #[test]
    fn nearest_vertex_scan() {
        let mut dt = square_dt(10.0);
        let id = dt.insert(Point2::new(5.0, 5.0)).unwrap();
        assert_eq!(dt.nearest_vertex(Point2::new(5.2, 4.9)), Some(id));
    }

    #[test]
    fn grid_insertions_stay_consistent() {
        // A regular grid triggers many cocircular configurations — the
        // classic stress test for the incircle tolerance.
        let bounds = Rect::square(8.0).unwrap();
        let mut dt = Triangulation::new(bounds);
        for j in 0..=4 {
            for i in 0..=4 {
                dt.insert(Point2::new(2.0 * i as f64, 2.0 * j as f64))
                    .unwrap();
            }
        }
        assert_eq!(dt.vertex_count(), 25);
        let area: f64 = dt
            .triangles()
            .iter()
            .map(|&t| dt.triangle_geometry(t).area())
            .sum();
        assert!((area - 64.0).abs() < 1e-6);
        assert!(dt.is_delaunay(1e-6));
    }

    #[test]
    fn last_insert_bbox_covers_cavity() {
        let mut dt = square_dt(10.0);
        assert!(dt.last_insert_bbox().is_some());
        dt.insert(Point2::new(5.0, 5.0)).unwrap();
        let (lo, hi) = dt.last_insert_bbox().unwrap();
        // The cavity for the centre point spans the whole square here.
        assert!(lo.x <= 0.0 + 1e-9 && hi.x >= 10.0 - 1e-9);
        assert!(lo.y <= 0.0 + 1e-9 && hi.y >= 10.0 - 1e-9);
    }

    #[test]
    fn edges_and_vertex_neighbors_are_consistent() {
        let mut dt = square_dt(10.0);
        let center = dt.insert(Point2::new(5.0, 5.0)).unwrap();
        let edges = dt.edges();
        // The centre connects to all four corners.
        let deg = edges
            .iter()
            .filter(|&&(a, b)| a == center || b == center)
            .count();
        assert_eq!(deg, 4);
        assert_eq!(dt.vertex_neighbors(center).len(), 4);
        // Neighbor lists agree with the edge set.
        for (a, b) in &edges {
            assert!(dt.vertex_neighbors(*a).contains(b));
            assert!(dt.vertex_neighbors(*b).contains(a));
        }
        // Edges are canonical (small id first) and unique.
        for w in edges.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn cached_locate_matches_uncached() {
        let mut dt = square_dt(10.0);
        for (x, y) in [(3.0, 7.0), (6.0, 2.0), (8.0, 8.0), (2.0, 3.0), (5.0, 5.0)] {
            dt.insert(Point2::new(x, y)).unwrap();
        }
        let cache = dt.locate_cache();
        let mut cursor = LocateCursor::new();
        for j in 0..20 {
            for i in 0..20 {
                let p = Point2::new(0.25 + 0.5 * i as f64, 0.25 + 0.5 * j as f64);
                let plain = dt.locate(p);
                let cached = dt.locate_with(&cache, &mut cursor, p);
                match (plain, cached) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        // Both triangles must contain the query point;
                        // on shared edges they may legitimately differ.
                        assert!(dt.triangle_geometry(a).contains(p));
                        assert!(dt.triangle_geometry(b).contains(p));
                    }
                    other => panic!("cache disagrees on hull membership at {p}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn stale_cache_still_locates_after_inserts() {
        let mut dt = square_dt(10.0);
        dt.insert(Point2::new(5.0, 5.0)).unwrap();
        let cache = dt.locate_cache();
        // Mutate after the snapshot: old seeds die in the cavities.
        for (x, y) in [(2.0, 2.0), (8.0, 3.0), (4.0, 8.0)] {
            dt.insert(Point2::new(x, y)).unwrap();
        }
        let mut cursor = LocateCursor::new();
        for (x, y) in [(1.0, 1.0), (9.0, 9.0), (5.0, 2.5), (3.0, 6.0)] {
            let p = Point2::new(x, y);
            let tri = dt.locate_with(&cache, &mut cursor, p).unwrap();
            assert!(dt.triangle_geometry(tri).contains(p));
        }
    }

    #[test]
    fn interpolate_with_matches_plain_interpolate() {
        let mut dt = square_dt(10.0);
        for (x, y) in [(3.0, 7.0), (6.0, 2.0), (8.0, 8.0)] {
            dt.insert(Point2::new(x, y)).unwrap();
        }
        let f = |p: Point2| 3.0 * p.x - 2.0 * p.y + 1.0;
        let zs: Vec<f64> = dt.vertices().map(f).collect();
        let cache = dt.locate_cache();
        let mut cursor = LocateCursor::new();
        for p in [
            Point2::new(1.0, 1.0),
            Point2::new(5.0, 5.0),
            Point2::new(9.9, 0.1),
        ] {
            let z = dt.interpolate_with(&cache, &mut cursor, p, &zs).unwrap();
            assert!((z - f(p)).abs() < 1e-9);
        }
        // Short value slices are rejected just like the plain path.
        assert!(dt
            .interpolate_with(&cache, &mut cursor, Point2::new(5.0, 5.0), &[1.0])
            .is_none());
    }

    #[test]
    fn from_points_convenience() {
        let bounds = Rect::square(10.0).unwrap();
        let dt = Triangulation::from_points(
            bounds,
            bounds.corners().into_iter().chain([Point2::new(4.0, 6.0)]),
        )
        .unwrap();
        assert_eq!(dt.vertex_count(), 5);
        assert!(
            Triangulation::from_points(bounds, [Point2::new(1.0, 1.0), Point2::new(1.0, 1.0)])
                .is_err()
        );
    }
}
