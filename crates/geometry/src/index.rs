//! A bucket-grid spatial index for range queries.
//!
//! Unit-disk graph construction and nearest-neighbor scans are the
//! inner loops of every experiment; the bucket grid turns their
//! all-pairs O(n²) into O(n) for the bounded-density deployments this
//! workspace simulates.

use crate::Point2;

/// A uniform bucket grid over a point set, supporting radius queries.
///
/// # Example
///
/// ```
/// use cps_geometry::{GridIndex, Point2};
///
/// let pts = vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(3.0, 0.0),
///     Point2::new(50.0, 50.0),
/// ];
/// let index = GridIndex::new(&pts, 5.0);
/// let mut near = index.within(Point2::new(1.0, 0.0), 5.0);
/// near.sort_unstable();
/// assert_eq!(near, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    points: Vec<Point2>,
    cell: f64,
    min_x: f64,
    min_y: f64,
    nx: usize,
    ny: usize,
    /// `buckets[cell]` = indices of points in that cell.
    buckets: Vec<Vec<u32>>,
}

impl GridIndex {
    /// Builds an index with the given bucket size (use the typical
    /// query radius; the structure stays correct for any radius).
    ///
    /// Non-finite points are excluded from every query result.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not positive and finite.
    pub fn new(points: &[Point2], cell_size: f64) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "cell size must be positive and finite"
        );
        let finite: Vec<&Point2> = points.iter().filter(|p| p.is_finite()).collect();
        let (mut min_x, mut min_y) = (0.0f64, 0.0f64);
        let (mut max_x, mut max_y) = (0.0f64, 0.0f64);
        if let Some(first) = finite.first() {
            min_x = first.x;
            min_y = first.y;
            max_x = first.x;
            max_y = first.y;
        }
        for p in &finite {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let nx = (((max_x - min_x) / cell_size).floor() as usize + 1).max(1);
        let ny = (((max_y - min_y) / cell_size).floor() as usize + 1).max(1);
        let mut buckets = vec![Vec::new(); nx * ny];
        for (i, p) in points.iter().enumerate() {
            if !p.is_finite() {
                continue;
            }
            let cx = (((p.x - min_x) / cell_size).floor() as usize).min(nx - 1);
            let cy = (((p.y - min_y) / cell_size).floor() as usize).min(ny - 1);
            buckets[cy * nx + cx].push(i as u32);
        }
        GridIndex {
            points: points.to_vec(),
            cell: cell_size,
            min_x,
            min_y,
            nx,
            ny,
            buckets,
        }
    }

    /// Number of indexed points (including non-finite placeholders).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Indices of all points within `radius` of `q` (inclusive), in
    /// arbitrary order.
    pub fn within(&self, q: Point2, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_within(q, radius, |i| out.push(i));
        out
    }

    /// Calls `f` for every point within `radius` of `q` (inclusive).
    pub fn for_each_within<F: FnMut(usize)>(&self, q: Point2, radius: f64, mut f: F) {
        if self.points.is_empty() || !q.is_finite() {
            return;
        }
        let r2 = radius * radius;
        let reach = (radius / self.cell).ceil() as i64 + 1;
        let qcx = ((q.x - self.min_x) / self.cell).floor() as i64;
        let qcy = ((q.y - self.min_y) / self.cell).floor() as i64;
        for cy in (qcy - reach).max(0)..=(qcy + reach).min(self.ny as i64 - 1) {
            for cx in (qcx - reach).max(0)..=(qcx + reach).min(self.nx as i64 - 1) {
                for &i in &self.buckets[cy as usize * self.nx + cx as usize] {
                    let p = self.points[i as usize];
                    if q.distance_squared(p) <= r2 {
                        f(i as usize);
                    }
                }
            }
        }
    }

    /// Index of the nearest point to `q`, or `None` for an empty index
    /// or a non-finite query.
    pub fn nearest(&self, q: Point2) -> Option<usize> {
        if !q.is_finite() || self.points.iter().all(|p| !p.is_finite()) {
            return None;
        }
        // Expanding ring search; falls back to a scan after a few rings
        // (sparse regions).
        let mut radius = self.cell;
        for _ in 0..6 {
            let mut best: Option<(usize, f64)> = None;
            self.for_each_within(q, radius, |i| {
                let d = q.distance_squared(self.points[i]);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            });
            if let Some((i, _)) = best {
                return Some(i);
            }
            radius *= 2.0;
        }
        self.points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_finite())
            .min_by(|a, b| {
                q.distance_squared(*a.1)
                    .partial_cmp(&q.distance_squared(*b.1))
                    .expect("finite distances")
            })
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<Point2> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point2::new(rng.gen_range(-50.0..150.0), rng.gen_range(-50.0..150.0)))
            .collect()
    }

    #[test]
    fn within_matches_brute_force() {
        let pts = random_points(300, 4);
        let index = GridIndex::new(&pts, 10.0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let q = Point2::new(rng.gen_range(-60.0..160.0), rng.gen_range(-60.0..160.0));
            let r = rng.gen_range(0.5..40.0);
            let mut got = index.within(q, r);
            got.sort_unstable();
            let expected: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| q.distance(**p) <= r)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, expected, "q={q}, r={r}");
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = random_points(200, 7);
        let index = GridIndex::new(&pts, 8.0);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..50 {
            let q = Point2::new(rng.gen_range(-80.0..180.0), rng.gen_range(-80.0..180.0));
            let got = index.nearest(q).unwrap();
            let best = pts
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    q.distance_squared(*a.1)
                        .partial_cmp(&q.distance_squared(*b.1))
                        .unwrap()
                })
                .unwrap()
                .0;
            assert!(
                (q.distance(pts[got]) - q.distance(pts[best])).abs() < 1e-12,
                "q={q}: got {got}, best {best}"
            );
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let empty = GridIndex::new(&[], 1.0);
        assert!(empty.is_empty());
        assert!(empty.within(Point2::ORIGIN, 10.0).is_empty());
        assert_eq!(empty.nearest(Point2::ORIGIN), None);

        let single = GridIndex::new(&[Point2::new(3.0, 4.0)], 1.0);
        assert_eq!(single.len(), 1);
        assert_eq!(single.nearest(Point2::ORIGIN), Some(0));

        // Coincident points all report.
        let coincident = vec![Point2::new(1.0, 1.0); 5];
        let idx = GridIndex::new(&coincident, 2.0);
        assert_eq!(idx.within(Point2::new(1.0, 1.0), 0.1).len(), 5);
    }

    #[test]
    fn non_finite_points_are_ignored() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(f64::NAN, 1.0),
            Point2::new(2.0, 0.0),
        ];
        let idx = GridIndex::new(&pts, 1.0);
        let mut got = idx.within(Point2::ORIGIN, 5.0);
        got.sort_unstable();
        assert_eq!(got, vec![0, 2]);
        assert_eq!(idx.nearest(Point2::new(f64::NAN, 0.0)), None);
    }
}
