//! Planar points.

use std::fmt;

use cps_linalg::Vec2;

/// A point in the plane (a *position*, as opposed to the displacement
/// vector [`Vec2`]).
///
/// # Example
///
/// ```
/// use cps_geometry::Point2;
///
/// let a = Point2::new(0.0, 0.0);
/// let b = Point2::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// let mid = a.midpoint(b);
/// assert_eq!(mid, Point2::new(1.5, 2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point2 {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point2 {
    /// The origin.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point2) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn distance_squared(self, other: Point2) -> f64 {
        (self - other).norm_squared()
    }

    /// The midpoint of the segment between `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point2) -> Point2 {
        Point2::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        Point2::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Displaces the point by a vector.
    #[inline]
    pub fn translate(self, v: Vec2) -> Point2 {
        Point2::new(self.x + v.x, self.y + v.y)
    }

    /// The position vector from the origin.
    #[inline]
    pub fn to_vec(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl std::ops::Sub for Point2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Point2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl std::ops::Add<Vec2> for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, rhs: Vec2) -> Point2 {
        self.translate(rhs)
    }
}

impl From<(f64, f64)> for Point2 {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point2::new(x, y)
    }
}

impl From<Point2> for (f64, f64) {
    #[inline]
    fn from(p: Point2) -> Self {
        (p.x, p.y)
    }
}

impl From<Vec2> for Point2 {
    #[inline]
    fn from(v: Vec2) -> Self {
        Point2::new(v.x, v.y)
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_midpoint() {
        let a = Point2::new(1.0, 1.0);
        let b = Point2::new(4.0, 5.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_squared(b), 25.0);
        assert_eq!(a.midpoint(b), Point2::new(2.5, 3.0));
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(10.0, -2.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point2::new(5.0, -1.0));
    }

    #[test]
    fn point_vector_arithmetic() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(4.0, 6.0);
        let d = b - a;
        assert_eq!(d, Vec2::new(3.0, 4.0));
        assert_eq!(a + d, b);
        assert_eq!(a.translate(d), b);
        assert_eq!(a.to_vec(), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn conversions() {
        let p: Point2 = (2.0, 3.0).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (2.0, 3.0));
        let q: Point2 = Vec2::new(1.0, 1.0).into();
        assert_eq!(q, Point2::new(1.0, 1.0));
    }

    #[test]
    fn finiteness() {
        assert!(Point2::new(0.0, 0.0).is_finite());
        assert!(!Point2::new(f64::NAN, 0.0).is_finite());
    }
}
