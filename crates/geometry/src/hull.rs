//! Convex hull (Andrew's monotone chain).

use crate::predicates::orient2d;
use crate::Point2;

/// Computes the convex hull of a point set with Andrew's monotone-chain
/// algorithm, returning hull vertices in counterclockwise order.
///
/// Collinear points on hull edges are omitted. Inputs with fewer than
/// three non-coincident points return what is available (the degenerate
/// hull): zero, one, or two points.
///
/// # Example
///
/// ```
/// use cps_geometry::{convex_hull, Point2};
///
/// let pts = vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(2.0, 0.0),
///     Point2::new(1.0, 1.0), // interior
///     Point2::new(2.0, 2.0),
///     Point2::new(0.0, 2.0),
/// ];
/// let hull = convex_hull(&pts);
/// assert_eq!(hull.len(), 4);
/// ```
pub fn convex_hull(points: &[Point2]) -> Vec<Point2> {
    let mut pts: Vec<Point2> = points.iter().copied().filter(|p| p.is_finite()).collect();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .expect("finite coordinates compare")
            .then(a.y.partial_cmp(&b.y).expect("finite coordinates compare"))
    });
    pts.dedup_by(|a, b| a.x == b.x && a.y == b.y);
    let n = pts.len();
    if n < 3 {
        return pts;
    }

    let mut hull: Vec<Point2> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 && orient2d(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && orient2d(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point equals the first
    hull
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::is_ccw;

    #[test]
    fn square_hull() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
            Point2::new(0.5, 0.5),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        // All consecutive triples wind CCW.
        for i in 0..hull.len() {
            let a = hull[i];
            let b = hull[(i + 1) % hull.len()];
            let c = hull[(i + 2) % hull.len()];
            assert!(is_ccw(a, b, c));
        }
    }

    #[test]
    fn collinear_points_collapse() {
        let pts: Vec<Point2> = (0..5).map(|i| Point2::new(i as f64, i as f64)).collect();
        let hull = convex_hull(&pts);
        // Degenerate: all collinear — monotone chain keeps the two extremes.
        assert!(hull.len() <= 2, "collinear hull had {} points", hull.len());
    }

    #[test]
    fn degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point2::new(1.0, 1.0)]).len(), 1);
        let two = convex_hull(&[Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)]);
        assert_eq!(two.len(), 2);
        // Duplicates collapse.
        let dup = convex_hull(&[Point2::new(1.0, 1.0); 4]);
        assert_eq!(dup.len(), 1);
    }

    #[test]
    fn hull_contains_all_points() {
        // Every input point must be inside or on the hull boundary:
        // check via orientation against each hull edge.
        let pts: Vec<Point2> = (0..30)
            .map(|i| {
                let a = i as f64 * 0.7;
                Point2::new(10.0 * a.cos() * (1.0 + 0.1 * (i % 3) as f64), 8.0 * a.sin())
            })
            .collect();
        let hull = convex_hull(&pts);
        assert!(hull.len() >= 3);
        for &p in &pts {
            for i in 0..hull.len() {
                let a = hull[i];
                let b = hull[(i + 1) % hull.len()];
                assert!(
                    orient2d(a, b, p) >= -1e-9,
                    "point {p} lies outside hull edge {a}→{b}"
                );
            }
        }
    }

    #[test]
    fn non_finite_points_ignored() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(f64::NAN, 1.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.5, 1.0),
        ];
        assert_eq!(convex_hull(&pts).len(), 3);
    }
}
