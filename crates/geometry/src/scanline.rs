//! Scanline clipping of triangles to grid rows.
//!
//! The raster δ-quadrature kernel sweeps each alive triangle row by
//! row instead of locating the containing triangle per grid cell.
//! This module holds the purely geometric half of that kernel: the
//! exact x-interval a triangle covers on a horizontal line, and the
//! grid-cell index range inside such an interval.
//!
//! Spans are *exact* intersections (no outward epsilon): a grid point
//! is claimed only when it lies inside or on the clipped triangle, so
//! adjacent triangles partition a row's cells at the fp-rounded edge
//! crossing and the union of spans never overclaims past the hull by
//! more than one rounding step of the crossing computation.

use crate::point::Point2;
use crate::triangle::Triangle;

/// The inclusive x-interval of `tri ∩ {y = row}`, or `None` when the
/// triangle misses the row entirely (or is degenerate).
///
/// Works for either winding: each edge's half-plane test is oriented
/// by the sign of the triangle's signed area.
pub fn triangle_row_span(tri: &Triangle, row: f64) -> Option<(f64, f64)> {
    let area2 = crate::predicates::orient2d(tri.a, tri.b, tri.c);
    if area2 == 0.0 || !area2.is_finite() {
        return None;
    }
    let sign = if area2 > 0.0 { 1.0 } else { -1.0 };
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    for (a, b) in [(tri.a, tri.b), (tri.b, tri.c), (tri.c, tri.a)] {
        if !clip_edge(a, b, sign, row, &mut lo, &mut hi) {
            return None;
        }
    }
    (lo <= hi).then_some((lo, hi))
}

/// Intersects `[lo, hi]` with the half-plane left of directed edge
/// `a → b` (for positive `sign`), restricted to `y = row`. Returns
/// `false` when the row is entirely outside this half-plane.
fn clip_edge(a: Point2, b: Point2, sign: f64, row: f64, lo: &mut f64, hi: &mut f64) -> bool {
    // Inside means sign·[(b−a) × (p−a)] ≥ 0 with p = (x, row):
    //   sign·(b.y−a.y)·(x−a.x) ≤ sign·(b.x−a.x)·(row−a.y)
    let c = sign * (b.y - a.y);
    let r = sign * (b.x - a.x) * (row - a.y);
    if c > 0.0 {
        *hi = hi.min(a.x + r / c);
    } else if c < 0.0 {
        *lo = lo.max(a.x + r / c);
    } else if r < 0.0 {
        return false;
    }
    true
}

/// Grid indices `i` with `origin + i·step ∈ [lo, hi]`, clamped to
/// `0..n`, as an inclusive range; `None` when no grid point falls in
/// the interval.
// `!(a <= b)` rather than `a > b`: the negation also rejects NaN
// endpoints (a degenerate clip), which `>` would let through.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn span_cells(lo: f64, hi: f64, origin: f64, step: f64, n: usize) -> Option<(usize, usize)> {
    if n == 0 || step <= 0.0 || !(lo <= hi) {
        return None;
    }
    let first = ((lo - origin) / step).ceil().max(0.0);
    let last = ((hi - origin) / step).floor().min((n - 1) as f64);
    if !(first <= last) {
        return None;
    }
    Some((first as usize, last as usize))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri(ax: f64, ay: f64, bx: f64, by: f64, cx: f64, cy: f64) -> Triangle {
        Triangle::new(
            Point2::new(ax, ay),
            Point2::new(bx, by),
            Point2::new(cx, cy),
        )
    }

    #[test]
    fn row_span_matches_hand_computed_intersections() {
        // Right triangle with legs on the axes.
        let t = tri(0.0, 0.0, 4.0, 0.0, 0.0, 4.0);
        let (lo, hi) = triangle_row_span(&t, 1.0).unwrap();
        assert!((lo - 0.0).abs() < 1e-12);
        assert!((hi - 3.0).abs() < 1e-12);
        // Rows through a vertex and outside.
        let (lo, hi) = triangle_row_span(&t, 4.0).unwrap();
        assert!((lo - 0.0).abs() < 1e-12 && (hi - 0.0).abs() < 1e-12);
        assert!(triangle_row_span(&t, 4.5).is_none());
        assert!(triangle_row_span(&t, -0.5).is_none());
    }

    #[test]
    fn winding_does_not_change_the_span() {
        let ccw = tri(0.0, 0.0, 4.0, 0.0, 0.0, 4.0);
        let cw = tri(0.0, 0.0, 0.0, 4.0, 4.0, 0.0);
        let (l1, h1) = triangle_row_span(&ccw, 2.0).unwrap();
        let (l2, h2) = triangle_row_span(&cw, 2.0).unwrap();
        assert_eq!(l1.to_bits(), l2.to_bits());
        assert_eq!(h1.to_bits(), h2.to_bits());
    }

    #[test]
    fn horizontal_edges_clip_correctly() {
        // Flat-bottom triangle: the bottom edge is parallel to rows.
        let t = tri(0.0, 0.0, 4.0, 0.0, 2.0, 2.0);
        let (lo, hi) = triangle_row_span(&t, 0.0).unwrap();
        assert!((lo - 0.0).abs() < 1e-12 && (hi - 4.0).abs() < 1e-12);
        let (lo, hi) = triangle_row_span(&t, 1.0).unwrap();
        assert!((lo - 1.0).abs() < 1e-12 && (hi - 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_triangles_yield_no_span() {
        let t = tri(0.0, 0.0, 1.0, 1.0, 2.0, 2.0);
        assert!(triangle_row_span(&t, 1.0).is_none());
    }

    #[test]
    fn span_cells_rounds_inward() {
        // Grid points at 0, 0.5, 1.0, ..., 5.0.
        assert_eq!(span_cells(0.9, 3.1, 0.0, 0.5, 11), Some((2, 6)));
        // Exact endpoints are included.
        assert_eq!(span_cells(1.0, 3.0, 0.0, 0.5, 11), Some((2, 6)));
        // Interval between grid points claims nothing.
        assert_eq!(span_cells(1.1, 1.4, 0.0, 0.5, 11), None);
        // Clamps to the grid.
        assert_eq!(span_cells(-10.0, 100.0, 0.0, 0.5, 11), Some((0, 10)));
        assert_eq!(span_cells(f64::NAN, 1.0, 0.0, 0.5, 11), None);
        assert_eq!(span_cells(0.0, 1.0, 0.0, 0.5, 0), None);
    }
}
