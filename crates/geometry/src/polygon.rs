//! Convex-polygon helpers: area, centroid, half-plane clipping.

use crate::Point2;
use cps_linalg::Vec2;

/// Signed area of a polygon by the shoelace formula (positive for
/// counterclockwise winding). Degenerate polygons (< 3 vertices) have
/// zero area.
///
/// # Example
///
/// ```
/// use cps_geometry::{polygon_area, Point2};
///
/// let square = vec![
///     Point2::new(0.0, 0.0),
///     Point2::new(2.0, 0.0),
///     Point2::new(2.0, 2.0),
///     Point2::new(0.0, 2.0),
/// ];
/// assert_eq!(polygon_area(&square), 4.0);
/// ```
pub fn polygon_area(vertices: &[Point2]) -> f64 {
    if vertices.len() < 3 {
        return 0.0;
    }
    let mut twice = 0.0;
    for i in 0..vertices.len() {
        let a = vertices[i];
        let b = vertices[(i + 1) % vertices.len()];
        twice += a.x * b.y - b.x * a.y;
    }
    twice / 2.0
}

/// Area centroid of a simple polygon. Falls back to the vertex average
/// for degenerate (zero-area) inputs; `None` only for an empty input.
pub fn polygon_centroid(vertices: &[Point2]) -> Option<Point2> {
    if vertices.is_empty() {
        return None;
    }
    let area = polygon_area(vertices);
    if area.abs() < 1e-12 {
        let n = vertices.len() as f64;
        let (sx, sy) = vertices
            .iter()
            .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
        return Some(Point2::new(sx / n, sy / n));
    }
    let mut cx = 0.0;
    let mut cy = 0.0;
    for i in 0..vertices.len() {
        let a = vertices[i];
        let b = vertices[(i + 1) % vertices.len()];
        let cross = a.x * b.y - b.x * a.y;
        cx += (a.x + b.x) * cross;
        cy += (a.y + b.y) * cross;
    }
    Some(Point2::new(cx / (6.0 * area), cy / (6.0 * area)))
}

/// Clips a convex polygon against the half-plane
/// `{ p : (p − origin) · normal ≤ limit }` (Sutherland–Hodgman, one
/// plane). Returns the (possibly empty) clipped polygon.
pub fn clip_polygon_halfplane(
    vertices: &[Point2],
    origin: Point2,
    normal: Vec2,
    limit: f64,
) -> Vec<Point2> {
    let inside = |p: Point2| (p - origin).dot(normal) <= limit + 1e-12;
    let mut out = Vec::with_capacity(vertices.len() + 1);
    for i in 0..vertices.len() {
        let a = vertices[i];
        let b = vertices[(i + 1) % vertices.len()];
        let (ia, ib) = (inside(a), inside(b));
        if ia {
            out.push(a);
        }
        if ia != ib {
            // Edge crosses the boundary: add the intersection point.
            let da = (a - origin).dot(normal) - limit;
            let db = (b - origin).dot(normal) - limit;
            let t = da / (da - db);
            out.push(a.lerp(b, t));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Vec<Point2> {
        vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ]
    }

    #[test]
    fn area_signs_and_degenerates() {
        let sq = unit_square();
        assert_eq!(polygon_area(&sq), 1.0);
        let mut cw = sq.clone();
        cw.reverse();
        assert_eq!(polygon_area(&cw), -1.0);
        assert_eq!(polygon_area(&sq[..2]), 0.0);
        assert_eq!(polygon_area(&[]), 0.0);
    }

    #[test]
    fn centroid_of_square_and_triangle() {
        assert_eq!(
            polygon_centroid(&unit_square()).unwrap(),
            Point2::new(0.5, 0.5)
        );
        let tri = vec![
            Point2::new(0.0, 0.0),
            Point2::new(3.0, 0.0),
            Point2::new(0.0, 3.0),
        ];
        let c = polygon_centroid(&tri).unwrap();
        assert!((c.x - 1.0).abs() < 1e-12);
        assert!((c.y - 1.0).abs() < 1e-12);
        assert!(polygon_centroid(&[]).is_none());
        // Degenerate fallback.
        let seg = vec![Point2::new(0.0, 0.0), Point2::new(2.0, 0.0)];
        assert_eq!(polygon_centroid(&seg).unwrap(), Point2::new(1.0, 0.0));
    }

    #[test]
    fn clipping_halves_the_square() {
        // Keep x ≤ 0.5.
        let clipped =
            clip_polygon_halfplane(&unit_square(), Point2::ORIGIN, Vec2::new(1.0, 0.0), 0.5);
        assert!((polygon_area(&clipped) - 0.5).abs() < 1e-12);
        assert!(clipped.iter().all(|p| p.x <= 0.5 + 1e-9));
    }

    #[test]
    fn clipping_away_everything_yields_empty() {
        let clipped =
            clip_polygon_halfplane(&unit_square(), Point2::ORIGIN, Vec2::new(1.0, 0.0), -1.0);
        assert!(clipped.is_empty());
    }

    #[test]
    fn clipping_with_no_effect_is_identity() {
        let clipped =
            clip_polygon_halfplane(&unit_square(), Point2::ORIGIN, Vec2::new(1.0, 0.0), 5.0);
        assert_eq!(clipped.len(), 4);
        assert!((polygon_area(&clipped) - 1.0).abs() < 1e-12);
    }
}
