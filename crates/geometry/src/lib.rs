//! Computational-geometry substrate for the CPS distribution workspace.
//!
//! The paper reconstructs the environment surface by Delaunay-triangulating
//! the sampled node positions and lifting the triangulation to 3-D
//! (`z* = DT(x, y)`). This crate provides everything that pipeline needs:
//!
//! * [`Point2`] and planar [`predicates`] — orientation and
//!   in-circumcircle tests;
//! * [`Triangle`] utilities — circumcircles, barycentric coordinates,
//!   planar interpolation of a lifted vertex value;
//! * [`Triangulation`] — an incremental Bowyer–Watson Delaunay
//!   triangulation with walk-based point location, supporting the
//!   one-point-at-a-time refinement loop of the paper's FRA (Table 1);
//! * [`convex_hull`] and [`Rect`]/[`GridSpec`] region helpers.
//!
//! # Example
//!
//! ```
//! use cps_geometry::{Point2, Triangulation, Rect};
//!
//! let region = Rect::new(Point2::new(0.0, 0.0), Point2::new(100.0, 100.0)).unwrap();
//! let mut dt = Triangulation::new(region);
//! // Paper's FRA initial state: the four region corners.
//! for corner in region.corners() {
//!     dt.insert(corner).unwrap();
//! }
//! dt.insert(Point2::new(40.0, 60.0)).unwrap();
//! assert_eq!(dt.vertex_count(), 5);
//! // Every triangle of the finished triangulation satisfies Delaunay's
//! // empty-circumcircle property.
//! assert!(dt.is_delaunay(1e-9));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod delaunay;
mod error;
mod hull;
mod index;
mod point;
mod polygon;
pub mod predicates;
mod region;
pub mod scanline;
mod triangle;
mod voronoi;

pub use delaunay::{LocateCache, LocateCursor, Triangulation, VertexId};
pub use error::GeometryError;
pub use hull::convex_hull;
pub use index::GridIndex;
pub use point::Point2;
pub use polygon::{clip_polygon_halfplane, polygon_area, polygon_centroid};
pub use region::{GridSpec, Rect};
pub use triangle::Triangle;
pub use voronoi::{coverage_areas, voronoi_cells};
