//! Voronoi coverage cells — the dual of the Delaunay triangulation.
//!
//! Each inserted vertex owns the region of the plane closer to it than
//! to any other vertex, clipped to the triangulation's bounding
//! rectangle. The cells quantify per-node *coverage responsibility*: a
//! deployment's cell-area distribution shows how evenly (or how
//! curvature-weightedly) it splits the region.

use cps_linalg::Vec2;

use crate::polygon::{clip_polygon_halfplane, polygon_area};
use crate::{Point2, Triangulation, VertexId};

/// Computes the bounded Voronoi cell of every vertex: a convex polygon
/// (counterclockwise) clipped to the triangulation's bounding region.
///
/// Each cell is the bounding rectangle clipped by the perpendicular
/// bisector against every Delaunay neighbor — the classic duality: only
/// Delaunay neighbors contribute active Voronoi edges. Isolated cases
/// (fewer than 2 vertices) fall back to the full rectangle.
///
/// # Example
///
/// ```
/// use cps_geometry::{voronoi_cells, polygon_area, Point2, Rect, Triangulation};
///
/// let bounds = Rect::square(10.0).unwrap();
/// let dt = Triangulation::from_points(
///     bounds,
///     [Point2::new(2.5, 5.0), Point2::new(7.5, 5.0), Point2::new(5.0, 9.0)],
/// ).unwrap();
/// let cells = voronoi_cells(&dt);
/// let total: f64 = cells.iter().map(|c| polygon_area(c)).sum();
/// assert!((total - 100.0).abs() < 1e-6); // cells tile the region
/// ```
pub fn voronoi_cells(dt: &Triangulation) -> Vec<Vec<Point2>> {
    let bounds = dt.bounds();
    let rect_poly: Vec<Point2> = bounds.corners().to_vec();
    let n = dt.vertex_count();
    if n == 0 {
        return Vec::new();
    }

    // Vertex adjacency from the real triangles, plus an all-pairs
    // fallback for degenerate inputs (collinear sites produce no real
    // triangles but still have Voronoi cells).
    let mut neighbors: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); n];
    for tri in dt.triangles() {
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    neighbors[tri[i].0].insert(tri[j].0);
                }
            }
        }
    }
    let triangulated = dt.triangle_count() > 0;

    (0..n)
        .map(|i| {
            let site = dt.vertex(VertexId(i));
            let mut cell = rect_poly.clone();
            let others: Vec<usize> = if triangulated && !neighbors[i].is_empty() {
                neighbors[i].iter().copied().collect()
            } else {
                (0..n).filter(|&j| j != i).collect()
            };
            for j in others {
                let other = dt.vertex(VertexId(j));
                let mid = site.midpoint(other);
                let normal: Vec2 = other - site;
                // Keep the half-plane on the site's side of the
                // bisector: (p − mid) · (other − site) ≤ 0.
                cell = clip_polygon_halfplane(&cell, mid, normal, 0.0);
                if cell.is_empty() {
                    break;
                }
            }
            cell
        })
        .collect()
}

/// Per-vertex coverage areas: the Voronoi cell areas, in vertex order.
/// Always sums to the bounding region's area (up to floating error)
/// for non-empty triangulations.
pub fn coverage_areas(dt: &Triangulation) -> Vec<f64> {
    voronoi_cells(dt)
        .iter()
        .map(|c| polygon_area(c).abs())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rect;

    #[test]
    fn single_site_owns_everything() {
        let bounds = Rect::square(10.0).unwrap();
        let dt = Triangulation::from_points(bounds, [Point2::new(3.0, 3.0)]).unwrap();
        let cells = voronoi_cells(&dt);
        assert_eq!(cells.len(), 1);
        assert!((polygon_area(&cells[0]) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn two_sites_split_along_the_bisector() {
        let bounds = Rect::square(10.0).unwrap();
        let dt = Triangulation::from_points(bounds, [Point2::new(2.0, 5.0), Point2::new(8.0, 5.0)])
            .unwrap();
        let areas = coverage_areas(&dt);
        assert!((areas[0] - 50.0).abs() < 1e-9);
        assert!((areas[1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn cells_tile_the_region_for_many_sites() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let bounds = Rect::square(100.0).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let mut dt = Triangulation::new(bounds);
        for _ in 0..40 {
            let p = Point2::new(rng.gen_range(1.0..99.0), rng.gen_range(1.0..99.0));
            let _ = dt.insert(p);
        }
        let areas = coverage_areas(&dt);
        let total: f64 = areas.iter().sum();
        assert!(
            (total - 10_000.0).abs() < 1e-6,
            "cells must tile the region, got {total}"
        );
        assert!(areas.iter().all(|&a| a > 0.0));
    }

    #[test]
    fn every_site_lies_inside_its_own_cell() {
        let bounds = Rect::square(50.0).unwrap();
        let sites = [
            Point2::new(10.0, 10.0),
            Point2::new(40.0, 12.0),
            Point2::new(25.0, 40.0),
            Point2::new(26.0, 22.0),
        ];
        let dt = Triangulation::from_points(bounds, sites).unwrap();
        let cells = voronoi_cells(&dt);
        for (i, cell) in cells.iter().enumerate() {
            // Site inside (or on the boundary of) its convex cell:
            // check via the half-plane property against each edge.
            let site = dt.vertex(VertexId(i));
            for k in 0..cell.len() {
                let a = cell[k];
                let b = cell[(k + 1) % cell.len()];
                let cross = (b - a).cross(site - a);
                assert!(cross >= -1e-9, "site {i} outside its cell");
            }
        }
    }

    #[test]
    fn grid_sites_have_equal_cells() {
        let bounds = Rect::square(30.0).unwrap();
        let mut sites = Vec::new();
        for j in 0..3 {
            for i in 0..3 {
                sites.push(Point2::new(5.0 + 10.0 * i as f64, 5.0 + 10.0 * j as f64));
            }
        }
        let dt = Triangulation::from_points(bounds, sites).unwrap();
        let areas = coverage_areas(&dt);
        for &a in &areas {
            assert!((a - 100.0).abs() < 1e-6, "expected 100, got {a}");
        }
    }
}
