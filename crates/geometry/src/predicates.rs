//! Planar geometric predicates.
//!
//! These are careful (but not exact-arithmetic) `f64` implementations of
//! the two classic predicates behind Delaunay triangulation: orientation
//! and in-circumcircle. Tolerances are scaled by the magnitude of the
//! operands so the predicates behave consistently across the coordinate
//! ranges used in the paper's experiments (0–100 m regions).

use crate::Point2;

/// Twice the signed area of triangle `(a, b, c)`.
///
/// Positive when the triangle winds counterclockwise, negative when
/// clockwise, near zero when degenerate.
///
/// # Example
///
/// ```
/// use cps_geometry::{predicates::orient2d, Point2};
///
/// let a = Point2::new(0.0, 0.0);
/// let b = Point2::new(1.0, 0.0);
/// let c = Point2::new(0.0, 1.0);
/// assert!(orient2d(a, b, c) > 0.0); // counterclockwise
/// assert!(orient2d(a, c, b) < 0.0); // clockwise
/// ```
#[inline]
pub fn orient2d(a: Point2, b: Point2, c: Point2) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Returns `true` when `(a, b, c)` winds counterclockwise within a scaled
/// tolerance.
#[inline]
pub fn is_ccw(a: Point2, b: Point2, c: Point2) -> bool {
    orient2d(a, b, c) > orientation_tolerance(a, b, c)
}

/// Returns `true` when the three points are collinear within a scaled
/// tolerance.
#[inline]
pub fn is_collinear(a: Point2, b: Point2, c: Point2) -> bool {
    orient2d(a, b, c).abs() <= orientation_tolerance(a, b, c)
}

/// Tolerance for orientation tests, scaled to the operand magnitudes.
#[inline]
fn orientation_tolerance(a: Point2, b: Point2, c: Point2) -> f64 {
    let m =
        a.x.abs()
            .max(a.y.abs())
            .max(b.x.abs())
            .max(b.y.abs())
            .max(c.x.abs())
            .max(c.y.abs())
            .max(1.0);
    8.0 * f64::EPSILON * m * m
}

/// In-circumcircle test: `true` when `p` lies strictly inside the
/// circumcircle of the counterclockwise triangle `(a, b, c)`.
///
/// This is the Delaunay "empty circle" predicate. The test evaluates the
/// standard lifted 3×3 determinant; a tolerance proportional to the
/// operand magnitudes keeps cocircular configurations classified as *not
/// inside*, which guarantees termination of cavity searches.
///
/// The caller must supply `(a, b, c)` in counterclockwise order; for a
/// clockwise triangle the sign of the determinant flips.
///
/// # Example
///
/// ```
/// use cps_geometry::{predicates::in_circumcircle, Point2};
///
/// let a = Point2::new(0.0, 0.0);
/// let b = Point2::new(2.0, 0.0);
/// let c = Point2::new(1.0, 2.0);
/// assert!(in_circumcircle(a, b, c, Point2::new(1.0, 0.5)));
/// assert!(!in_circumcircle(a, b, c, Point2::new(10.0, 10.0)));
/// ```
#[inline]
pub fn in_circumcircle(a: Point2, b: Point2, c: Point2, p: Point2) -> bool {
    let adx = a.x - p.x;
    let ady = a.y - p.y;
    let bdx = b.x - p.x;
    let bdy = b.y - p.y;
    let cdx = c.x - p.x;
    let cdy = c.y - p.y;

    let ad = adx * adx + ady * ady;
    let bd = bdx * bdx + bdy * bdy;
    let cd = cdx * cdx + cdy * cdy;

    let det =
        adx * (bdy * cd - bd * cdy) - ady * (bdx * cd - bd * cdx) + ad * (bdx * cdy - bdy * cdx);

    // Scale-aware tolerance: the determinant has units of length⁴.
    let m = ad.max(bd).max(cd).max(1.0);
    det > 64.0 * f64::EPSILON * m * m
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Point2 = Point2::new(0.0, 0.0);
    const B: Point2 = Point2::new(4.0, 0.0);
    const C: Point2 = Point2::new(2.0, 3.0);

    #[test]
    fn orientation_signs() {
        assert!(orient2d(A, B, C) > 0.0);
        assert!(orient2d(A, C, B) < 0.0);
        assert_eq!(orient2d(A, B, Point2::new(8.0, 0.0)), 0.0);
    }

    #[test]
    fn ccw_and_collinear_helpers() {
        assert!(is_ccw(A, B, C));
        assert!(!is_ccw(A, C, B));
        assert!(is_collinear(A, B, Point2::new(2.0, 0.0)));
        assert!(!is_collinear(A, B, C));
    }

    #[test]
    fn circumcircle_center_inside_far_outside() {
        // Circumcenter of (A, B, C) is inside.
        assert!(in_circumcircle(A, B, C, Point2::new(2.0, 1.0)));
        assert!(!in_circumcircle(A, B, C, Point2::new(100.0, 100.0)));
    }

    #[test]
    fn circumcircle_vertices_not_inside() {
        // Triangle vertices are *on* the circle, never strictly inside.
        assert!(!in_circumcircle(A, B, C, A));
        assert!(!in_circumcircle(A, B, C, B));
        assert!(!in_circumcircle(A, B, C, C));
    }

    #[test]
    fn circumcircle_cocircular_point_not_inside() {
        // Unit square: all four corners are cocircular.
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(1.0, 1.0);
        let d = Point2::new(0.0, 1.0);
        assert!(!in_circumcircle(a, b, c, d));
    }

    #[test]
    fn circumcircle_scales() {
        // Same configuration at 1000× scale must classify identically.
        let s = 1000.0;
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(4.0 * s, 0.0);
        let c = Point2::new(2.0 * s, 3.0 * s);
        assert!(in_circumcircle(a, b, c, Point2::new(2.0 * s, 1.0 * s)));
        assert!(!in_circumcircle(a, b, c, Point2::new(50.0 * s, 50.0 * s)));
    }
}
