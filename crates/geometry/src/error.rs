//! Error type for geometric construction and queries.

use std::error::Error;
use std::fmt;

use crate::Point2;

/// Errors produced by geometric constructions.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GeometryError {
    /// A rectangle was given a min corner not strictly below its max
    /// corner.
    InvalidRect {
        /// Offending minimum corner.
        min: Point2,
        /// Offending maximum corner.
        max: Point2,
    },
    /// A point lies outside the triangulation's bounding region.
    OutOfBounds {
        /// The rejected point.
        point: Point2,
    },
    /// The point coincides (within tolerance) with an existing vertex.
    DuplicatePoint {
        /// The rejected point.
        point: Point2,
    },
    /// An input coordinate was NaN or infinite.
    NonFiniteCoordinate,
    /// The requested grid has a zero dimension.
    EmptyGrid,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::InvalidRect { min, max } => {
                write!(
                    f,
                    "invalid rectangle: min {min} not strictly below max {max}"
                )
            }
            GeometryError::OutOfBounds { point } => {
                write!(f, "point {point} lies outside the triangulation region")
            }
            GeometryError::DuplicatePoint { point } => {
                write!(f, "point {point} duplicates an existing vertex")
            }
            GeometryError::NonFiniteCoordinate => {
                write!(f, "coordinate was NaN or infinite")
            }
            GeometryError::EmptyGrid => write!(f, "grid must have at least one cell"),
        }
    }
}

impl Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GeometryError::DuplicatePoint {
            point: Point2::new(1.0, 2.0),
        };
        assert!(e.to_string().contains("duplicates"));
        assert!(GeometryError::EmptyGrid.to_string().contains("grid"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<GeometryError>();
    }
}
