//! Triangle utilities: areas, circumcircles, barycentric coordinates and
//! planar interpolation.

use crate::predicates::orient2d;
use crate::Point2;

/// A triangle in the plane, defined by its three corner points.
///
/// # Example
///
/// ```
/// use cps_geometry::{Point2, Triangle};
///
/// let t = Triangle::new(
///     Point2::new(0.0, 0.0),
///     Point2::new(4.0, 0.0),
///     Point2::new(0.0, 3.0),
/// );
/// assert_eq!(t.area(), 6.0);
/// assert!(t.contains(Point2::new(1.0, 1.0)));
/// // Interpolate a plane z = x + y over the triangle:
/// let z = t.interpolate(Point2::new(1.0, 1.0), [0.0, 4.0, 3.0]).unwrap();
/// assert!((z - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Triangle {
    /// First corner.
    pub a: Point2,
    /// Second corner.
    pub b: Point2,
    /// Third corner.
    pub c: Point2,
}

impl Triangle {
    /// Creates a triangle from its corners.
    #[inline]
    pub const fn new(a: Point2, b: Point2, c: Point2) -> Self {
        Triangle { a, b, c }
    }

    /// Unsigned area.
    #[inline]
    pub fn area(&self) -> f64 {
        orient2d(self.a, self.b, self.c).abs() / 2.0
    }

    /// Signed area (positive for counterclockwise winding).
    #[inline]
    pub fn signed_area(&self) -> f64 {
        orient2d(self.a, self.b, self.c) / 2.0
    }

    /// Centroid of the triangle.
    #[inline]
    pub fn centroid(&self) -> Point2 {
        Point2::new(
            (self.a.x + self.b.x + self.c.x) / 3.0,
            (self.a.y + self.b.y + self.c.y) / 3.0,
        )
    }

    /// Barycentric coordinates `(wa, wb, wc)` of `p` with respect to this
    /// triangle. The weights sum to 1; all non-negative iff `p` is inside
    /// (or on the boundary of) the triangle.
    ///
    /// Returns `None` when the triangle is degenerate (area ≈ 0).
    pub fn barycentric(&self, p: Point2) -> Option<(f64, f64, f64)> {
        let denom = orient2d(self.a, self.b, self.c);
        if denom.abs() < 1e-300 {
            return None;
        }
        let wa = orient2d(p, self.b, self.c) / denom;
        let wb = orient2d(self.a, p, self.c) / denom;
        let wc = 1.0 - wa - wb;
        Some((wa, wb, wc))
    }

    /// Returns `true` when `p` lies inside or on the boundary of the
    /// triangle (within a small relative tolerance).
    pub fn contains(&self, p: Point2) -> bool {
        match self.barycentric(p) {
            Some((wa, wb, wc)) => {
                let tol = -1e-9;
                wa >= tol && wb >= tol && wc >= tol
            }
            None => false,
        }
    }

    /// Linearly interpolates vertex values `z = [za, zb, zc]` at `p`
    /// (the planar facet of the lifted surface `z* = DT(x, y)`).
    ///
    /// Returns `None` for a degenerate triangle. Values are extrapolated
    /// if `p` is outside the triangle; combine with [`Triangle::contains`]
    /// when interpolation must stay interior.
    pub fn interpolate(&self, p: Point2, z: [f64; 3]) -> Option<f64> {
        let (wa, wb, wc) = self.barycentric(p)?;
        Some(wa * z[0] + wb * z[1] + wc * z[2])
    }

    /// Circumcenter and squared circumradius, or `None` for a degenerate
    /// triangle.
    pub fn circumcircle(&self) -> Option<(Point2, f64)> {
        let d = 2.0
            * (self.a.x * (self.b.y - self.c.y)
                + self.b.x * (self.c.y - self.a.y)
                + self.c.x * (self.a.y - self.b.y));
        if d.abs() < 1e-300 {
            return None;
        }
        let a2 = self.a.x * self.a.x + self.a.y * self.a.y;
        let b2 = self.b.x * self.b.x + self.b.y * self.b.y;
        let c2 = self.c.x * self.c.x + self.c.y * self.c.y;
        let ux =
            (a2 * (self.b.y - self.c.y) + b2 * (self.c.y - self.a.y) + c2 * (self.a.y - self.b.y))
                / d;
        let uy =
            (a2 * (self.c.x - self.b.x) + b2 * (self.a.x - self.c.x) + c2 * (self.b.x - self.a.x))
                / d;
        let center = Point2::new(ux, uy);
        Some((center, center.distance_squared(self.a)))
    }

    /// Axis-aligned bounding box as `(min, max)` corners.
    pub fn bounding_box(&self) -> (Point2, Point2) {
        (
            Point2::new(
                self.a.x.min(self.b.x).min(self.c.x),
                self.a.y.min(self.b.y).min(self.c.y),
            ),
            Point2::new(
                self.a.x.max(self.b.x).max(self.c.x),
                self.a.y.max(self.b.y).max(self.c.y),
            ),
        )
    }

    /// Length of the longest edge.
    pub fn longest_edge(&self) -> f64 {
        self.a
            .distance(self.b)
            .max(self.b.distance(self.c))
            .max(self.c.distance(self.a))
    }

    /// Length of the shortest edge.
    pub fn shortest_edge(&self) -> f64 {
        self.a
            .distance(self.b)
            .min(self.b.distance(self.c))
            .min(self.c.distance(self.a))
    }

    /// Mesh-quality aspect ratio: circumradius over twice the inradius
    /// (1 for equilateral, growing unboundedly for slivers). Returns
    /// `f64::INFINITY` for degenerate triangles.
    pub fn aspect_ratio(&self) -> f64 {
        let area = self.area();
        if area < 1e-300 {
            return f64::INFINITY;
        }
        let (ab, bc, ca) = (
            self.a.distance(self.b),
            self.b.distance(self.c),
            self.c.distance(self.a),
        );
        // R = abc / (4·area); r = area / s with s the semi-perimeter.
        let circumradius = ab * bc * ca / (4.0 * area);
        let inradius = area / ((ab + bc + ca) / 2.0);
        circumradius / (2.0 * inradius)
    }

    /// Smallest interior angle in radians (0 for degenerate input).
    pub fn min_angle(&self) -> f64 {
        let (ab, bc, ca) = (
            self.a.distance(self.b),
            self.b.distance(self.c),
            self.c.distance(self.a),
        );
        if ab * bc * ca < 1e-300 {
            return 0.0;
        }
        // Law of cosines at each corner.
        let angle = |opp: f64, e1: f64, e2: f64| -> f64 {
            (((e1 * e1 + e2 * e2 - opp * opp) / (2.0 * e1 * e2)).clamp(-1.0, 1.0)).acos()
        };
        angle(bc, ab, ca)
            .min(angle(ca, ab, bc))
            .min(angle(ab, bc, ca))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn right_triangle() -> Triangle {
        Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Point2::new(0.0, 3.0),
        )
    }

    #[test]
    fn area_and_signed_area() {
        let t = right_triangle();
        assert_eq!(t.area(), 6.0);
        assert_eq!(t.signed_area(), 6.0);
        let flipped = Triangle::new(t.a, t.c, t.b);
        assert_eq!(flipped.signed_area(), -6.0);
        assert_eq!(flipped.area(), 6.0);
    }

    #[test]
    fn centroid_is_average() {
        let t = right_triangle();
        let c = t.centroid();
        assert!((c.x - 4.0 / 3.0).abs() < 1e-12);
        assert!((c.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn barycentric_weights_sum_to_one() {
        let t = right_triangle();
        let p = Point2::new(1.0, 1.0);
        let (wa, wb, wc) = t.barycentric(p).unwrap();
        assert!((wa + wb + wc - 1.0).abs() < 1e-12);
        // Vertices map to unit weights.
        assert_eq!(t.barycentric(t.a).unwrap().0, 1.0);
    }

    #[test]
    fn degenerate_triangle_returns_none() {
        let t = Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(2.0, 2.0),
        );
        assert!(t.barycentric(Point2::new(0.5, 0.5)).is_none());
        assert!(t.circumcircle().is_none());
        assert!(!t.contains(Point2::new(0.5, 0.5)));
    }

    #[test]
    fn containment() {
        let t = right_triangle();
        assert!(t.contains(Point2::new(0.5, 0.5)));
        assert!(t.contains(t.a)); // boundary counts
        assert!(t.contains(Point2::new(2.0, 0.0))); // on edge
        assert!(!t.contains(Point2::new(3.0, 3.0)));
        assert!(!t.contains(Point2::new(-0.1, 0.0)));
    }

    #[test]
    fn interpolation_reproduces_plane() {
        // z = 2x - y + 5 is linear, so interpolation must be exact.
        let t = right_triangle();
        let f = |p: Point2| 2.0 * p.x - p.y + 5.0;
        let z = [f(t.a), f(t.b), f(t.c)];
        for p in [
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 0.0),
            Point2::new(2.0, 0.5),
            Point2::new(10.0, -3.0), // extrapolation is still the plane
        ] {
            assert!((t.interpolate(p, z).unwrap() - f(p)).abs() < 1e-9);
        }
    }

    #[test]
    fn circumcircle_is_equidistant() {
        let t = Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(5.0, 1.0),
            Point2::new(2.0, 4.0),
        );
        let (center, r2) = t.circumcircle().unwrap();
        for v in [t.a, t.b, t.c] {
            assert!((center.distance_squared(v) - r2).abs() < 1e-9);
        }
    }

    #[test]
    fn quality_metrics() {
        // Equilateral: aspect ratio 1, min angle 60°.
        let h = 3f64.sqrt() / 2.0;
        let eq = Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.5, h),
        );
        assert!((eq.aspect_ratio() - 1.0).abs() < 1e-9);
        assert!((eq.min_angle() - std::f64::consts::FRAC_PI_3).abs() < 1e-9);
        assert!((eq.shortest_edge() - 1.0).abs() < 1e-12);
        // A sliver: terrible aspect ratio, tiny min angle.
        let sliver = Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(5.0, 0.01),
        );
        assert!(sliver.aspect_ratio() > 100.0);
        assert!(sliver.min_angle() < 0.01);
        // Degenerate: infinite ratio, zero angle.
        let degen = Triangle::new(
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(2.0, 2.0),
        );
        assert_eq!(degen.aspect_ratio(), f64::INFINITY);
        assert_eq!(degen.min_angle(), 0.0);
    }

    #[test]
    fn bounding_box_and_longest_edge() {
        let t = right_triangle();
        let (lo, hi) = t.bounding_box();
        assert_eq!(lo, Point2::new(0.0, 0.0));
        assert_eq!(hi, Point2::new(4.0, 3.0));
        assert_eq!(t.longest_edge(), 5.0);
    }
}
