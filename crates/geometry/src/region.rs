//! Rectangular regions of interest and sampling grids.

use crate::{GeometryError, Point2};

/// An axis-aligned rectangle, used as the region of interest `A`.
///
/// # Example
///
/// ```
/// use cps_geometry::{Point2, Rect};
///
/// // The paper's 100×100 m region.
/// let region = Rect::square(100.0).unwrap();
/// assert_eq!(region.area(), 10_000.0);
/// assert!(region.contains(Point2::new(50.0, 50.0)));
/// assert!(!region.contains(Point2::new(101.0, 0.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rect {
    min: Point2,
    max: Point2,
}

impl Rect {
    /// Creates a rectangle from its minimum and maximum corners.
    ///
    /// # Errors
    ///
    /// * [`GeometryError::InvalidRect`] — `min` is not strictly below
    ///   `max` in both coordinates.
    /// * [`GeometryError::NonFiniteCoordinate`] — a corner is NaN or
    ///   infinite.
    pub fn new(min: Point2, max: Point2) -> Result<Self, GeometryError> {
        if !min.is_finite() || !max.is_finite() {
            return Err(GeometryError::NonFiniteCoordinate);
        }
        if min.x >= max.x || min.y >= max.y {
            return Err(GeometryError::InvalidRect { min, max });
        }
        Ok(Rect { min, max })
    }

    /// A `side`×`side` square with its minimum corner at the origin —
    /// the paper's canonical region shape.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::InvalidRect`] if `side` is not a positive
    /// finite number.
    pub fn square(side: f64) -> Result<Self, GeometryError> {
        Rect::new(Point2::ORIGIN, Point2::new(side, side))
    }

    /// Minimum corner.
    #[inline]
    pub fn min(&self) -> Point2 {
        self.min
    }

    /// Maximum corner.
    #[inline]
    pub fn max(&self) -> Point2 {
        self.max
    }

    /// Width along X.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along Y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point2 {
        self.min.midpoint(self.max)
    }

    /// The four corners in counterclockwise order starting at `min`.
    pub fn corners(&self) -> [Point2; 4] {
        [
            self.min,
            Point2::new(self.max.x, self.min.y),
            self.max,
            Point2::new(self.min.x, self.max.y),
        ]
    }

    /// Returns `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps `p` to the rectangle (component-wise).
    #[inline]
    pub fn clamp(&self, p: Point2) -> Point2 {
        Point2::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Grows the rectangle by `margin` on every side.
    ///
    /// # Panics
    ///
    /// Panics (via `Rect::new` invariants, in debug) when shrinking with a
    /// negative margin would invert the rectangle; callers use positive
    /// margins.
    pub fn expanded(&self, margin: f64) -> Rect {
        Rect {
            min: Point2::new(self.min.x - margin, self.min.y - margin),
            max: Point2::new(self.max.x + margin, self.max.y + margin),
        }
    }
}

/// A regular sampling grid over a [`Rect`], mapping integer indices to
/// coordinates. Mirrors the paper's evaluation of the `√A × √A` positions
/// of the region (Table 1's `Err[√A][√A]` array).
///
/// Grid point `(i, j)` with `0 ≤ i < nx`, `0 ≤ j < ny` sits at the
/// coordinates returned by [`GridSpec::point`], with `(0, 0)` at the
/// region minimum and `(nx−1, ny−1)` at the maximum.
///
/// # Example
///
/// ```
/// use cps_geometry::{GridSpec, Rect};
///
/// let region = Rect::square(100.0).unwrap();
/// let grid = GridSpec::new(region, 101, 101).unwrap();
/// assert_eq!(grid.point(0, 0), region.min());
/// assert_eq!(grid.point(100, 100), region.max());
/// assert_eq!(grid.len(), 101 * 101);
/// // Cell area for quadrature:
/// assert!((grid.cell_area() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GridSpec {
    rect: Rect,
    nx: usize,
    ny: usize,
}

impl GridSpec {
    /// Creates a grid with `nx × ny` sample points over `rect`.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::EmptyGrid`] when either dimension is less
    /// than 2 (a grid needs at least one cell).
    pub fn new(rect: Rect, nx: usize, ny: usize) -> Result<Self, GeometryError> {
        if nx < 2 || ny < 2 {
            return Err(GeometryError::EmptyGrid);
        }
        Ok(GridSpec { rect, nx, ny })
    }

    /// The underlying region.
    #[inline]
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// Number of sample points along X.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of sample points along Y.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of sample points.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// Always `false`: construction requires at least 2×2 points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Grid spacing along X.
    #[inline]
    pub fn dx(&self) -> f64 {
        self.rect.width() / (self.nx - 1) as f64
    }

    /// Grid spacing along Y.
    #[inline]
    pub fn dy(&self) -> f64 {
        self.rect.height() / (self.ny - 1) as f64
    }

    /// Area associated with one grid cell (`dx · dy`), the quadrature
    /// weight for integrating over the region.
    #[inline]
    pub fn cell_area(&self) -> f64 {
        self.dx() * self.dy()
    }

    /// Coordinates of grid point `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nx()` or `j >= ny()`.
    #[inline]
    pub fn point(&self, i: usize, j: usize) -> Point2 {
        assert!(i < self.nx && j < self.ny, "grid index out of bounds");
        Point2::new(
            self.rect.min().x + self.dx() * i as f64,
            self.rect.min().y + self.dy() * j as f64,
        )
    }

    /// Flat row-major index of grid point `(i, j)` (`j` major).
    #[inline]
    pub fn flat_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny);
        j * self.nx + i
    }

    /// The grid indices nearest to an arbitrary point, clamped to the
    /// grid.
    pub fn nearest_index(&self, p: Point2) -> (usize, usize) {
        let fi = ((p.x - self.rect.min().x) / self.dx()).round();
        let fj = ((p.y - self.rect.min().y) / self.dy()).round();
        let i = fi.clamp(0.0, (self.nx - 1) as f64) as usize;
        let j = fj.clamp(0.0, (self.ny - 1) as f64) as usize;
        (i, j)
    }

    /// Iterates over all grid points as `(i, j, point)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, Point2)> + '_ {
        let (nx, ny) = (self.nx, self.ny);
        (0..ny).flat_map(move |j| (0..nx).map(move |i| (i, j, self.point(i, j))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_validation() {
        assert!(Rect::new(Point2::new(0.0, 0.0), Point2::new(0.0, 1.0)).is_err());
        assert!(Rect::new(Point2::new(2.0, 0.0), Point2::new(1.0, 1.0)).is_err());
        assert!(Rect::new(Point2::new(0.0, 0.0), Point2::new(f64::NAN, 1.0)).is_err());
        assert!(Rect::square(-5.0).is_err());
        assert!(Rect::square(10.0).is_ok());
    }

    #[test]
    fn rect_geometry() {
        let r = Rect::new(Point2::new(1.0, 2.0), Point2::new(5.0, 8.0)).unwrap();
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 6.0);
        assert_eq!(r.area(), 24.0);
        assert_eq!(r.center(), Point2::new(3.0, 5.0));
        let corners = r.corners();
        assert_eq!(corners[0], r.min());
        assert_eq!(corners[2], r.max());
    }

    #[test]
    fn rect_contains_and_clamp() {
        let r = Rect::square(10.0).unwrap();
        assert!(r.contains(Point2::new(0.0, 0.0)));
        assert!(r.contains(Point2::new(10.0, 10.0)));
        assert!(!r.contains(Point2::new(10.1, 5.0)));
        assert_eq!(r.clamp(Point2::new(-1.0, 12.0)), Point2::new(0.0, 10.0));
    }

    #[test]
    fn rect_expanded() {
        let r = Rect::square(10.0).unwrap().expanded(5.0);
        assert_eq!(r.min(), Point2::new(-5.0, -5.0));
        assert_eq!(r.max(), Point2::new(15.0, 15.0));
    }

    #[test]
    fn grid_mapping_round_trips() {
        let grid = GridSpec::new(Rect::square(100.0).unwrap(), 101, 51).unwrap();
        assert_eq!(grid.dx(), 1.0);
        assert_eq!(grid.dy(), 2.0);
        let p = grid.point(10, 20);
        assert_eq!(p, Point2::new(10.0, 40.0));
        assert_eq!(grid.nearest_index(p), (10, 20));
        // Off-grid points snap to nearest.
        assert_eq!(grid.nearest_index(Point2::new(10.4, 40.9)), (10, 20));
        // Far outside clamps.
        assert_eq!(grid.nearest_index(Point2::new(-50.0, 500.0)), (0, 50));
    }

    #[test]
    fn grid_iteration_covers_everything() {
        let grid = GridSpec::new(Rect::square(2.0).unwrap(), 3, 3).unwrap();
        let pts: Vec<_> = grid.iter().collect();
        assert_eq!(pts.len(), grid.len());
        assert_eq!(pts[0].2, Point2::new(0.0, 0.0));
        assert_eq!(pts.last().unwrap().2, Point2::new(2.0, 2.0));
        // Flat indices are unique and dense.
        let mut seen = vec![false; grid.len()];
        for (i, j, _) in grid.iter() {
            let f = grid.flat_index(i, j);
            assert!(!seen[f]);
            seen[f] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn grid_rejects_degenerate() {
        let r = Rect::square(1.0).unwrap();
        assert!(GridSpec::new(r, 1, 5).is_err());
        assert!(GridSpec::new(r, 5, 0).is_err());
    }
}
