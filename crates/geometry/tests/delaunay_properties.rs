//! Property-based tests of the Delaunay triangulation invariants.

use cps_geometry::{Point2, Rect, Triangulation};
use proptest::prelude::*;

const SIDE: f64 = 100.0;

/// Random interior points, quantized to a 0.25 m lattice so that
/// proptest's shrinker produces stable configurations (coincident points
/// are deduplicated before insertion).
fn interior_points(max: usize) -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec((1u32..=399, 1u32..=399), 3..max).prop_map(|raw| {
        let mut pts: Vec<(u32, u32)> = raw;
        pts.sort_unstable();
        pts.dedup();
        pts.into_iter()
            .map(|(i, j)| Point2::new(f64::from(i) * 0.25, f64::from(j) * 0.25))
            .collect()
    })
}

fn build(points: &[Point2]) -> Triangulation {
    let bounds = Rect::square(SIDE).unwrap();
    let mut dt = Triangulation::new(bounds);
    for c in bounds.corners() {
        dt.insert(c).unwrap();
    }
    for &p in points {
        dt.insert(p).unwrap();
    }
    dt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The union of real triangles always tiles the full square exactly:
    /// no holes, no overlaps.
    #[test]
    fn triangulation_tiles_the_region(pts in interior_points(40)) {
        let dt = build(&pts);
        let area: f64 = dt
            .triangles()
            .iter()
            .map(|&t| dt.triangle_geometry(t).area())
            .sum();
        prop_assert!((area - SIDE * SIDE).abs() < 1e-5, "area {area}");
    }

    /// Every triangle satisfies the empty-circumcircle property.
    #[test]
    fn triangulation_is_delaunay(pts in interior_points(30)) {
        let dt = build(&pts);
        prop_assert!(dt.is_delaunay(1e-7));
    }

    /// Euler's relation for a triangulated convex polygon with all
    /// vertices inside/on the square: T = 2·V − 2 − H, where H is the
    /// hull size. With the four corners always present, the hull contains
    /// at least those 4 vertices.
    #[test]
    fn euler_relation_holds(pts in interior_points(30)) {
        let dt = build(&pts);
        let v = dt.vertex_count();
        let hull = cps_geometry::convex_hull(&dt.vertices().collect::<Vec<_>>());
        let expected = 2 * v - 2 - hull.len();
        prop_assert_eq!(dt.triangle_count(), expected);
    }

    /// Interpolation of an affine function is exact everywhere inside
    /// the region, whatever the triangulation.
    #[test]
    fn interpolation_reproduces_affine(
        pts in interior_points(25),
        qx in 0.0f64..SIDE,
        qy in 0.0f64..SIDE,
    ) {
        let dt = build(&pts);
        let f = |p: Point2| 0.7 * p.x - 1.3 * p.y + 10.0;
        let zs: Vec<f64> = dt.vertices().map(f).collect();
        let q = Point2::new(qx, qy);
        let z = dt.interpolate(q, &zs).expect("in-region point interpolates");
        prop_assert!((z - f(q)).abs() < 1e-6, "at {}: {} vs {}", q, z, f(q));
    }

    /// locate() returns a triangle that actually contains the query.
    #[test]
    fn locate_returns_containing_triangle(
        pts in interior_points(25),
        qx in 0.0f64..SIDE,
        qy in 0.0f64..SIDE,
    ) {
        let dt = build(&pts);
        let q = Point2::new(qx, qy);
        let tri = dt.locate(q).expect("in-region point located");
        prop_assert!(dt.triangle_geometry(tri).contains(q));
    }

    /// Duplicate insertion is always rejected and leaves the structure
    /// unchanged.
    #[test]
    fn duplicates_rejected(pts in interior_points(20), pick in any::<prop::sample::Index>()) {
        let mut dt = build(&pts);
        let n = dt.vertex_count();
        let dup = pts[pick.index(pts.len())];
        prop_assert!(dt.insert(dup).is_err());
        prop_assert_eq!(dt.vertex_count(), n);
    }
}
