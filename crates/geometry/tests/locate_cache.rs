//! Regression test for the point-location accelerator: `locate` through
//! a [`LocateCache`] must agree with the uncached walk on a large batch
//! of random queries — same hull membership everywhere, and a
//! containing triangle wherever one is reported.

use cps_geometry::{LocateCursor, Point2, Rect, Triangulation};

/// Deterministic splitmix64 so the test needs no external crates.
struct Mix(u64);

impl Mix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn point_in(&mut self, r: Rect, margin: f64) -> Point2 {
        Point2::new(
            r.min().x + margin + self.unit() * (r.width() - 2.0 * margin),
            r.min().y + margin + self.unit() * (r.height() - 2.0 * margin),
        )
    }
}

#[test]
fn cached_locate_agrees_with_uncached_walk_on_1k_queries() {
    let region = Rect::new(Point2::new(0.0, 0.0), Point2::new(100.0, 100.0)).unwrap();
    let mut rng = Mix(0xC0FFEE);
    let mut dt = Triangulation::new(region);
    for corner in region.corners() {
        dt.insert(corner).unwrap();
    }
    let mut inserted = 4;
    while inserted < 150 {
        if dt.insert(rng.point_in(region, 0.0)).is_ok() {
            inserted += 1;
        }
    }

    let cache = dt.locate_cache();
    let mut cursor = LocateCursor::new();
    let mut agreements = 0usize;
    for _ in 0..1000 {
        let p = rng.point_in(region, 0.0);
        let plain = dt.locate(p);
        let cached = dt.locate_with(&cache, &mut cursor, p);
        match (plain, cached) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert!(
                    dt.triangle_geometry(a).contains(p),
                    "uncached walk returned a non-containing triangle at {p}"
                );
                assert!(
                    dt.triangle_geometry(b).contains(p),
                    "cached walk returned a non-containing triangle at {p}"
                );
                if a == b {
                    agreements += 1;
                }
            }
            other => panic!("hull membership disagrees at {p}: {other:?}"),
        }
    }
    // Identical triangles except possibly for queries landing exactly on
    // shared edges — with random queries that should be nearly all.
    assert!(
        agreements >= 990,
        "only {agreements}/1000 queries matched triangles exactly"
    );
}

#[test]
fn interpolate_with_is_consistent_across_cursors() {
    let region = Rect::new(Point2::new(0.0, 0.0), Point2::new(50.0, 50.0)).unwrap();
    let mut rng = Mix(42);
    let mut dt = Triangulation::new(region);
    for corner in region.corners() {
        dt.insert(corner).unwrap();
    }
    let mut inserted = 4;
    while inserted < 60 {
        if dt.insert(rng.point_in(region, 0.0)).is_ok() {
            inserted += 1;
        }
    }
    let zs: Vec<f64> = dt
        .vertices()
        .map(|p| (0.1 * p.x).sin() + 0.02 * p.y)
        .collect();
    let cache = dt.locate_cache();

    // Two cursors with different histories must produce identical
    // values: warm starts may change the walk, never the result's
    // containing-triangle correctness, and grid sweeps rely on
    // interpolation being cursor-independent away from edges.
    let mut warm = LocateCursor::new();
    for i in 0..100 {
        let t = i as f64 / 99.0;
        let _ = dt.interpolate_with(&cache, &mut warm, Point2::new(50.0 * t, 25.0), &zs);
    }
    for _ in 0..200 {
        let p = rng.point_in(region, 1.0);
        let mut cold = LocateCursor::new();
        let a = dt.interpolate_with(&cache, &mut cold, p, &zs);
        let b = dt.interpolate_with(&cache, &mut warm, p, &zs);
        match (a, b) {
            (None, None) => {}
            (Some(x), Some(y)) => assert!(
                (x - y).abs() < 1e-9,
                "cursor history changed interpolation at {p}: {x} vs {y}"
            ),
            other => panic!("hull membership differs by cursor at {p}: {other:?}"),
        }
    }
}
