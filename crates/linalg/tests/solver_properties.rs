//! Property tests on the linear-algebra kernels.

use cps_linalg::{lstsq, lstsq_normal, solve_cholesky, solve_dense, DMatrix};
use proptest::prelude::*;

/// Random well-conditioned square systems: diagonally dominant matrices
/// are never singular.
fn dominant_system(n: usize) -> impl Strategy<Value = (DMatrix, Vec<f64>)> {
    (
        prop::collection::vec(-1.0f64..1.0, n * n),
        prop::collection::vec(-10.0f64..10.0, n),
    )
        .prop_map(move |(mut entries, b)| {
            for i in 0..n {
                // Make row i dominant.
                let row_sum: f64 = (0..n)
                    .filter(|&j| j != i)
                    .map(|j| entries[i * n + j].abs())
                    .sum();
                entries[i * n + i] = row_sum + 1.0;
            }
            (DMatrix::from_vec(n, n, entries).expect("shape matches"), b)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Gaussian elimination solves every diagonally dominant system
    /// with a small residual.
    #[test]
    fn gaussian_residual_is_small((a, b) in dominant_system(5)) {
        let x = solve_dense(&a, &b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        for (p, q) in ax.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-8, "{p} vs {q}");
        }
    }

    /// Cholesky agrees with Gaussian elimination on SPD systems
    /// (AᵀA + I is always SPD).
    #[test]
    fn cholesky_matches_gaussian((a, b) in dominant_system(4)) {
        let mut spd = a.gram();
        for i in 0..4 {
            spd[(i, i)] += 1.0;
        }
        let x1 = solve_cholesky(&spd, &b).unwrap();
        let x2 = solve_dense(&spd, &b).unwrap();
        for (p, q) in x1.iter().zip(&x2) {
            prop_assert!((p - q).abs() < 1e-7);
        }
    }

    /// QR least squares and the normal equations agree on
    /// well-conditioned tall systems, and the residual is orthogonal to
    /// the column space.
    #[test]
    fn least_squares_normal_equations_agree(
        rows in prop::collection::vec((-3.0f64..3.0, -3.0f64..3.0), 8..20),
        coeffs in (0.5f64..2.0, -2.0f64..2.0, -1.0f64..1.0),
    ) {
        // Design: [1, x, y] with well-spread abscissae.
        let n = rows.len();
        let mut design = DMatrix::zeros(n, 3);
        let mut b = Vec::with_capacity(n);
        for (r, &(x, y)) in rows.iter().enumerate() {
            design[(r, 0)] = 1.0;
            design[(r, 1)] = x + r as f64 * 0.05; // break exact collinearity
            design[(r, 2)] = y - r as f64 * 0.03;
            b.push(coeffs.0 + coeffs.1 * design[(r, 1)] + coeffs.2 * design[(r, 2)]
                + 0.01 * ((r % 3) as f64 - 1.0));
        }
        let x_qr = lstsq(&design, &b).unwrap();
        let x_ne = lstsq_normal(&design, &b).unwrap();
        for (p, q) in x_qr.iter().zip(&x_ne) {
            prop_assert!((p - q).abs() < 1e-6, "{p} vs {q}");
        }
        // Orthogonality of the residual.
        let ax = design.mul_vec(&x_qr).unwrap();
        let resid: Vec<f64> = b.iter().zip(&ax).map(|(u, v)| u - v).collect();
        for v in design.transpose_mul_vec(&resid).unwrap() {
            prop_assert!(v.abs() < 1e-6, "residual not orthogonal: {v}");
        }
    }
}
