//! Direct linear solvers: Gaussian elimination, Cholesky, and closed-form
//! 2×2 / 3×3 kernels.

use crate::{DMatrix, LinalgError};

/// Pivot threshold below which a matrix is treated as singular.
const SINGULAR_EPS: f64 = 1e-12;

/// Solves the square system `A·x = b` by Gaussian elimination with partial
/// pivoting.
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] — `A` is not square or `b` has the
///   wrong length.
/// * [`LinalgError::Singular`] — no pivot above threshold was found.
/// * [`LinalgError::NonFiniteInput`] — `A` or `b` contains NaN/infinity.
///
/// # Example
///
/// ```
/// use cps_linalg::{DMatrix, solve_dense};
///
/// let a = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
/// let x = solve_dense(&a, &[5.0, 10.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 3.0).abs() < 1e-12);
/// ```
// Index loops: elimination updates row `r` from pivot row `col`, so
// both rows of `m` are indexed by the same loop variable.
#[allow(clippy::needless_range_loop)]
pub fn solve_dense(a: &DMatrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::ShapeMismatch {
            expected: (n, n),
            actual: a.shape(),
        });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            expected: (n, 1),
            actual: (b.len(), 1),
        });
    }
    if !a.is_finite() || b.iter().any(|v| !v.is_finite()) {
        return Err(LinalgError::NonFiniteInput);
    }

    // Augmented working copy.
    let mut m: Vec<Vec<f64>> = (0..n)
        .map(|r| {
            let mut row = a.row(r).to_vec();
            row.push(b[r]);
            row
        })
        .collect();

    for col in 0..n {
        // Partial pivot: the row with the largest magnitude in this column.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                m[i][col]
                    .abs()
                    .partial_cmp(&m[j][col].abs())
                    .expect("finite values compare")
            })
            .expect("non-empty range");
        if m[pivot_row][col].abs() < SINGULAR_EPS {
            return Err(LinalgError::Singular);
        }
        m.swap(col, pivot_row);
        for r in col + 1..n {
            let factor = m[r][col] / m[col][col];
            if factor == 0.0 {
                continue;
            }
            for c in col..=n {
                m[r][c] -= factor * m[col][c];
            }
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut s = m[r][n];
        for c in r + 1..n {
            s -= m[r][c] * x[c];
        }
        x[r] = s / m[r][r];
    }
    Ok(x)
}

/// Solves a symmetric positive-definite system `A·x = b` by Cholesky
/// decomposition (`A = L·Lᵀ`).
///
/// Preferred for the normal equations of least squares, where the Gram
/// matrix is SPD whenever the design matrix has full column rank.
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] — `A` not square / `b` wrong length.
/// * [`LinalgError::NotPositiveDefinite`] — a non-positive diagonal pivot
///   was encountered.
/// * [`LinalgError::NonFiniteInput`] — non-finite input values.
pub fn solve_cholesky(a: &DMatrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::ShapeMismatch {
            expected: (n, n),
            actual: a.shape(),
        });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            expected: (n, 1),
            actual: (b.len(), 1),
        });
    }
    if !a.is_finite() || b.iter().any(|v| !v.is_finite()) {
        return Err(LinalgError::NonFiniteInput);
    }

    // Lower-triangular factor, row-major.
    let mut l = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if s <= SINGULAR_EPS {
                    return Err(LinalgError::NotPositiveDefinite);
                }
                l[i * n + j] = s.sqrt();
            } else {
                l[i * n + j] = s / l[j * n + j];
            }
        }
    }

    // Forward solve L·y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[i * n + k] * y[k];
        }
        y[i] = s / l[i * n + i];
    }
    // Back solve Lᵀ·x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in i + 1..n {
            s -= l[k * n + i] * x[k];
        }
        x[i] = s / l[i * n + i];
    }
    Ok(x)
}

/// Solves the 2×2 system with rows `(a, b | e)` and `(c, d | f)` by
/// Cramer's rule.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] when the determinant is below the
/// singularity threshold.
pub fn solve_2x2(
    a: f64,
    b: f64,
    c: f64,
    d: f64,
    e: f64,
    f: f64,
) -> Result<(f64, f64), LinalgError> {
    let det = a * d - b * c;
    if det.abs() < SINGULAR_EPS {
        return Err(LinalgError::Singular);
    }
    Ok(((e * d - b * f) / det, (a * f - e * c) / det))
}

/// Solves a 3×3 system `M·x = b` given as row-major arrays, by Cramer's
/// rule. Used for the curvature quadric's normal equations on hot paths.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] when `det(M)` is below the
/// singularity threshold.
pub fn solve_3x3(m: &[[f64; 3]; 3], b: &[f64; 3]) -> Result<[f64; 3], LinalgError> {
    let det = det3(m);
    if det.abs() < SINGULAR_EPS {
        return Err(LinalgError::Singular);
    }
    let mut out = [0.0; 3];
    for col in 0..3 {
        let mut mc = *m;
        for row in 0..3 {
            mc[row][col] = b[row];
        }
        out[col] = det3(&mc) / det;
    }
    Ok(out)
}

#[inline]
fn det3(m: &[[f64; 3]; 3]) -> f64 {
    m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &DMatrix, x: &[f64], b: &[f64]) -> f64 {
        a.mul_vec(x)
            .unwrap()
            .iter()
            .zip(b)
            .map(|(ax, bi)| (ax - bi).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn gaussian_solves_known_system() {
        let a = DMatrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]])
            .unwrap();
        let b = [8.0, -11.0, -3.0];
        let x = solve_dense(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        assert!((x[2] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn gaussian_handles_pivoting() {
        // Leading zero forces a row swap.
        let a = DMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve_dense(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn gaussian_rejects_singular() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(
            solve_dense(&a, &[1.0, 2.0]).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn gaussian_rejects_bad_shapes_and_nan() {
        let rect = DMatrix::zeros(2, 3);
        assert!(matches!(
            solve_dense(&rect, &[0.0, 0.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        let a = DMatrix::identity(2);
        assert!(matches!(
            solve_dense(&a, &[0.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            solve_dense(&a, &[f64::NAN, 0.0]),
            Err(LinalgError::NonFiniteInput)
        ));
    }

    #[test]
    fn cholesky_solves_spd_system() {
        let a = DMatrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let b = [10.0, 8.0];
        let x = solve_cholesky(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        let a = DMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert_eq!(
            solve_cholesky(&a, &[1.0, 1.0]).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn cholesky_agrees_with_gaussian() {
        let a =
            DMatrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]).unwrap();
        let b = [1.0, -2.0, 3.0];
        let x1 = solve_cholesky(&a, &b).unwrap();
        let x2 = solve_dense(&a, &b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_2x2_cramer() {
        let (x, y) = solve_2x2(1.0, 1.0, 1.0, -1.0, 3.0, 1.0).unwrap();
        assert!((x - 2.0).abs() < 1e-12);
        assert!((y - 1.0).abs() < 1e-12);
        assert!(solve_2x2(1.0, 2.0, 2.0, 4.0, 0.0, 0.0).is_err());
    }

    #[test]
    fn solve_3x3_cramer_matches_dense() {
        let m = [[2.0, 1.0, -1.0], [-3.0, -1.0, 2.0], [-2.0, 1.0, 2.0]];
        let b = [8.0, -11.0, -3.0];
        let x = solve_3x3(&m, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        assert!((x[2] + 1.0).abs() < 1e-10);
        let singular = [[1.0, 0.0, 0.0], [2.0, 0.0, 0.0], [0.0, 0.0, 1.0]];
        assert!(solve_3x3(&singular, &b).is_err());
    }
}
