//! Householder QR decomposition.

use crate::{DMatrix, LinalgError};

/// The result of a Householder QR decomposition `A = Q·R` of an `m×n`
/// matrix with `m ≥ n`.
///
/// `Q` is stored implicitly as a sequence of Householder reflectors; the
/// decomposition supports applying `Qᵀ` to a vector (all that least
/// squares requires) without materializing `Q`.
///
/// # Example
///
/// ```
/// use cps_linalg::{DMatrix, QrDecomposition};
///
/// let a = DMatrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
/// let qr = QrDecomposition::new(&a).unwrap();
/// // Solve least squares: fit z = c0 + c1*x through (0,1), (1,3), (2,5).
/// let x = qr.solve(&[1.0, 3.0, 5.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-10);
/// assert!((x[1] - 2.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// Packed factorization: R in the upper triangle, Householder vectors
    /// below the diagonal (LAPACK-style), row-major `m×n`.
    packed: Vec<f64>,
    /// Scalar `tau` coefficients of the reflectors.
    taus: Vec<f64>,
    m: usize,
    n: usize,
}

impl QrDecomposition {
    /// Computes the QR decomposition of `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Underdetermined`] — fewer rows than columns.
    /// * [`LinalgError::NonFiniteInput`] — non-finite entries.
    pub fn new(a: &DMatrix) -> Result<Self, LinalgError> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::Underdetermined { rows: m, cols: n });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFiniteInput);
        }
        let mut packed = a.as_slice().to_vec();
        let mut taus = vec![0.0; n];

        for k in 0..n {
            // Compute the norm of column k below (and including) row k.
            let mut norm_sq = 0.0;
            for r in k..m {
                let v = packed[r * n + k];
                norm_sq += v * v;
            }
            let norm = norm_sq.sqrt();
            if norm == 0.0 {
                taus[k] = 0.0;
                continue;
            }
            let akk = packed[k * n + k];
            // Choose sign to avoid cancellation.
            let alpha = if akk >= 0.0 { -norm } else { norm };
            // Householder vector v = x - alpha*e1, normalized so v[0] = 1.
            let v0 = akk - alpha;
            // tau = 2 / (vᵀv) with v[0]=1 scaling: standard LAPACK formula.
            let mut vtv = v0 * v0;
            for r in k + 1..m {
                let v = packed[r * n + k];
                vtv += v * v;
            }
            if vtv == 0.0 {
                taus[k] = 0.0;
                continue;
            }
            let tau = 2.0 * v0 * v0 / vtv;
            // Store normalized vector below diagonal (v[0] implicit = 1).
            for r in k + 1..m {
                packed[r * n + k] /= v0;
            }
            packed[k * n + k] = alpha;
            taus[k] = tau;

            // Apply reflector to the remaining columns.
            for c in k + 1..n {
                // w = vᵀ · A[:, c]
                let mut w = packed[k * n + c];
                for r in k + 1..m {
                    w += packed[r * n + k] * packed[r * n + c];
                }
                w *= tau;
                packed[k * n + c] -= w;
                for r in k + 1..m {
                    let vk = packed[r * n + k];
                    packed[r * n + c] -= w * vk;
                }
            }
        }

        Ok(QrDecomposition { packed, taus, m, n })
    }

    /// Number of rows of the original matrix.
    #[inline]
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Number of columns of the original matrix.
    #[inline]
    pub fn cols(&self) -> usize {
        self.n
    }

    /// Entry `(r, c)` of the triangular factor `R` (zero below the
    /// diagonal).
    pub fn r(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.n && c < self.n, "R index out of bounds");
        if r <= c {
            self.packed[r * self.n + c]
        } else {
            0.0
        }
    }

    /// Returns `true` if `R` has a (numerically) zero diagonal entry,
    /// i.e. the original matrix is column-rank-deficient.
    pub fn is_rank_deficient(&self) -> bool {
        (0..self.n).any(|k| self.packed[k * self.n + k].abs() < 1e-12)
    }

    /// Applies `Qᵀ` to `b` in place (length `m`).
    // Index loops: the Householder vectors live in `packed` with row
    // stride `n`, so `b[r]` and `packed[r * n + k]` must share `r`.
    #[allow(clippy::needless_range_loop)]
    fn apply_q_transpose(&self, b: &mut [f64]) {
        let (m, n) = (self.m, self.n);
        for k in 0..n {
            let tau = self.taus[k];
            if tau == 0.0 {
                continue;
            }
            let mut w = b[k];
            for r in k + 1..m {
                w += self.packed[r * n + k] * b[r];
            }
            w *= tau;
            b[k] -= w;
            for r in k + 1..m {
                b[r] -= w * self.packed[r * n + k];
            }
        }
    }

    /// Solves the least-squares problem `min ‖A·x − b‖₂` using this
    /// decomposition.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] — `b.len() != rows()`.
    /// * [`LinalgError::Singular`] — `A` was column-rank-deficient.
    /// * [`LinalgError::NonFiniteInput`] — non-finite right-hand side.
    // Index loop: back-substitution reads `r(r, c)` and writes `x[r]`.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.m {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.m, 1),
                actual: (b.len(), 1),
            });
        }
        if b.iter().any(|v| !v.is_finite()) {
            return Err(LinalgError::NonFiniteInput);
        }
        if self.is_rank_deficient() {
            return Err(LinalgError::Singular);
        }
        let mut qtb = b.to_vec();
        self.apply_q_transpose(&mut qtb);
        // Back-substitute R·x = (Qᵀb)[0..n].
        let n = self.n;
        let mut x = vec![0.0; n];
        for r in (0..n).rev() {
            let mut s = qtb[r];
            for c in r + 1..n {
                s -= self.r(r, c) * x[c];
            }
            x[r] = s / self.r(r, r);
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_solves_square_system_exactly() {
        let a = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let qr = QrDecomposition::new(&a).unwrap();
        let x = qr.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn qr_rejects_underdetermined() {
        let a = DMatrix::zeros(2, 3);
        assert!(matches!(
            QrDecomposition::new(&a),
            Err(LinalgError::Underdetermined { rows: 2, cols: 3 })
        ));
    }

    #[test]
    fn qr_detects_rank_deficiency() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let qr = QrDecomposition::new(&a).unwrap();
        assert!(qr.is_rank_deficient());
        assert_eq!(
            qr.solve(&[1.0, 2.0, 3.0]).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn qr_least_squares_residual_is_orthogonal() {
        // Overdetermined fit; residual must be orthogonal to column space.
        let a = DMatrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let b = [0.1, 0.9, 2.1, 2.9];
        let qr = QrDecomposition::new(&a).unwrap();
        let x = qr.solve(&b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        let resid: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| q - p).collect();
        let at_r = a.transpose_mul_vec(&resid).unwrap();
        for v in at_r {
            assert!(v.abs() < 1e-10, "residual not orthogonal: {v}");
        }
    }

    #[test]
    fn qr_r_factor_upper_triangular_and_consistent() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let qr = QrDecomposition::new(&a).unwrap();
        assert_eq!(qr.rows(), 3);
        assert_eq!(qr.cols(), 2);
        assert_eq!(qr.r(1, 0), 0.0);
        // RᵀR must equal AᵀA (Q orthogonal).
        let g = a.gram();
        for i in 0..2 {
            for j in 0..2 {
                let mut s = 0.0;
                for k in 0..2 {
                    s += qr.r(k, i) * qr.r(k, j);
                }
                assert!((s - g[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn qr_rejects_bad_rhs() {
        let a = DMatrix::identity(2);
        let qr = QrDecomposition::new(&a).unwrap();
        assert!(qr.solve(&[1.0]).is_err());
        assert!(qr.solve(&[f64::NAN, 1.0]).is_err());
    }
}
