//! Small dense linear-algebra substrate for the CPS distribution workspace.
//!
//! The reproduced paper needs only a handful of numerical kernels: 2-D/3-D
//! vector arithmetic for force accumulation and geometry, small dense
//! matrices, linear solvers, and least squares for the local quadric fit
//! that yields Gaussian curvature (Eqn. 11 of the paper). The surrounding
//! Rust ecosystem for scientific computing is intentionally not used; this
//! crate is self-contained and dependency-free.
//!
//! # Example
//!
//! Solve an overdetermined system in the least-squares sense, exactly as a
//! CPS node fits `a·x² + b·xy + c·y² = z` over its sensed samples:
//!
//! ```
//! use cps_linalg::{DMatrix, lstsq};
//!
//! // Samples of z = 2x² + 0·xy + 1·y² (so a=2, b=0, c=1).
//! let pts = [(1.0, 0.0), (0.0, 1.0), (1.0, 1.0), (2.0, 1.0), (1.0, 2.0)];
//! let mut design = DMatrix::zeros(pts.len(), 3);
//! let mut rhs = Vec::new();
//! for (r, &(x, y)) in pts.iter().enumerate() {
//!     design[(r, 0)] = x * x;
//!     design[(r, 1)] = x * y;
//!     design[(r, 2)] = y * y;
//!     rhs.push(2.0 * x * x + y * y);
//! }
//! let coef = lstsq(&design, &rhs).unwrap();
//! assert!((coef[0] - 2.0).abs() < 1e-9);
//! assert!(coef[1].abs() < 1e-9);
//! assert!((coef[2] - 1.0).abs() < 1e-9);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod lstsq;
mod mat2;
mod matrix;
mod qr;
mod solve;
mod stats;
mod vector;

pub use error::LinalgError;
pub use lstsq::{lstsq, lstsq_normal, polyfit};
pub use mat2::SymMat2;
pub use matrix::DMatrix;
pub use qr::QrDecomposition;
pub use solve::{solve_2x2, solve_3x3, solve_cholesky, solve_dense};
pub use stats::{mean, rmse, Summary};
pub use vector::{Vec2, Vec3};
