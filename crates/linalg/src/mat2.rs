//! 2×2 symmetric-matrix utilities: the Hessian algebra behind
//! principal curvatures and their directions.

use crate::Vec2;

/// A symmetric 2×2 matrix `[[a, b], [b, c]]` — the shape of a surface
/// Hessian or a quadric coefficient matrix.
///
/// # Example
///
/// ```
/// use cps_linalg::SymMat2;
///
/// let h = SymMat2::new(2.0, 0.0, 3.0);
/// let (l1, l2) = h.eigenvalues();
/// assert_eq!((l1, l2), (2.0, 3.0));
/// assert_eq!(h.det(), 6.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SymMat2 {
    /// Top-left entry.
    pub a: f64,
    /// Off-diagonal entry.
    pub b: f64,
    /// Bottom-right entry.
    pub c: f64,
}

impl SymMat2 {
    /// Creates `[[a, b], [b, c]]`.
    pub const fn new(a: f64, b: f64, c: f64) -> Self {
        SymMat2 { a, b, c }
    }

    /// Matrix determinant `a·c − b²` (the Gaussian-curvature part of a
    /// Hessian).
    pub fn det(&self) -> f64 {
        self.a * self.c - self.b * self.b
    }

    /// Matrix trace `a + c` (twice the mean curvature of a Hessian).
    pub fn trace(&self) -> f64 {
        self.a + self.c
    }

    /// Eigenvalues in ascending order — for a quadric `ax² + bxy + cy²`
    /// Hessian these are the principal curvature magnitudes up to the
    /// paper's convention (`g₁,₂ = a + c ∓ √((a−c)² + b²)` matches
    /// eigenvalues of `[[2a, b], [b, 2c]]` halved appropriately).
    pub fn eigenvalues(&self) -> (f64, f64) {
        let mean = self.trace() / 2.0;
        let d = ((self.a - self.c) / 2.0).hypot(self.b);
        (mean - d, mean + d)
    }

    /// Unit eigenvector for the given eigenvalue (falls back to the X
    /// axis for the isotropic case where every direction qualifies).
    pub fn eigenvector(&self, eigenvalue: f64) -> Vec2 {
        // (A − λI)v = 0 → v ∝ (b, λ − a) or (λ − c, b).
        let v1 = Vec2::new(self.b, eigenvalue - self.a);
        let v2 = Vec2::new(eigenvalue - self.c, self.b);
        let v = if v1.norm_squared() >= v2.norm_squared() {
            v1
        } else {
            v2
        };
        if v.norm() <= 1e-14 {
            Vec2::new(1.0, 0.0)
        } else {
            v.normalized()
        }
    }

    /// Quadratic form `vᵀ M v`.
    pub fn quad_form(&self, v: Vec2) -> f64 {
        self.a * v.x * v.x + 2.0 * self.b * v.x * v.y + self.c * v.y * v.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigen() {
        let m = SymMat2::new(5.0, 0.0, -1.0);
        assert_eq!(m.eigenvalues(), (-1.0, 5.0));
        assert_eq!(m.det(), -5.0);
        assert_eq!(m.trace(), 4.0);
    }

    #[test]
    fn eigenvectors_satisfy_the_definition() {
        let m = SymMat2::new(2.0, 1.5, -0.5);
        let (l1, l2) = m.eigenvalues();
        for l in [l1, l2] {
            let v = m.eigenvector(l);
            // M·v = λ·v
            let mv = Vec2::new(m.a * v.x + m.b * v.y, m.b * v.x + m.c * v.y);
            assert!((mv - v * l).norm() < 1e-10, "λ={l}");
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
        // Eigenvectors of a symmetric matrix are orthogonal.
        let e1 = m.eigenvector(l1);
        let e2 = m.eigenvector(l2);
        assert!(e1.dot(e2).abs() < 1e-10);
    }

    #[test]
    fn isotropic_matrix_falls_back_gracefully() {
        let m = SymMat2::new(3.0, 0.0, 3.0);
        let (l1, l2) = m.eigenvalues();
        assert_eq!((l1, l2), (3.0, 3.0));
        let v = m.eigenvector(3.0);
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quad_form_matches_eigen_decomposition() {
        let m = SymMat2::new(1.0, -0.3, 2.0);
        let (l1, l2) = m.eigenvalues();
        let e1 = m.eigenvector(l1);
        let e2 = m.eigenvector(l2);
        assert!((m.quad_form(e1) - l1).abs() < 1e-10);
        assert!((m.quad_form(e2) - l2).abs() < 1e-10);
    }

    #[test]
    fn det_equals_eigenvalue_product() {
        let m = SymMat2::new(0.7, 0.4, -1.1);
        let (l1, l2) = m.eigenvalues();
        assert!((m.det() - l1 * l2).abs() < 1e-12);
        assert!((m.trace() - (l1 + l2)).abs() < 1e-12);
    }
}
