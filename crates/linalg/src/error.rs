//! Error type for linear-algebra operations.

use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Shape expected by the operation, `(rows, cols)`.
        expected: (usize, usize),
        /// Shape actually supplied, `(rows, cols)`.
        actual: (usize, usize),
    },
    /// The system matrix is singular (or numerically indistinguishable
    /// from singular) and cannot be solved.
    Singular,
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite,
    /// The system is underdetermined: fewer independent equations than
    /// unknowns.
    Underdetermined {
        /// Number of equations (rows) supplied.
        rows: usize,
        /// Number of unknowns (columns) requested.
        cols: usize,
    },
    /// An input contained a non-finite value (NaN or infinity).
    NonFiniteInput,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, actual } => write!(
                f,
                "shape mismatch: expected {}x{}, got {}x{}",
                expected.0, expected.1, actual.0, actual.1
            ),
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            LinalgError::Underdetermined { rows, cols } => write!(
                f,
                "underdetermined system: {rows} equations for {cols} unknowns"
            ),
            LinalgError::NonFiniteInput => {
                write!(f, "input contained a non-finite value")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = LinalgError::ShapeMismatch {
            expected: (3, 3),
            actual: (2, 3),
        };
        assert_eq!(e.to_string(), "shape mismatch: expected 3x3, got 2x3");
        assert_eq!(LinalgError::Singular.to_string(), "matrix is singular");
        assert_eq!(
            LinalgError::Underdetermined { rows: 2, cols: 3 }.to_string(),
            "underdetermined system: 2 equations for 3 unknowns"
        );
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<LinalgError>();
    }
}
