//! Least-squares solvers built on QR and the normal equations.

use crate::{solve_cholesky, DMatrix, LinalgError, QrDecomposition};

/// Solves `min ‖A·x − b‖₂` by Householder QR (numerically robust choice).
///
/// This is the solver the paper's Eqn. 11 calls for: the overdetermined
/// quadric fit `[x², xy, y²]·[a b c]ᵀ = z` over the samples in a node's
/// sensing range.
///
/// # Errors
///
/// * [`LinalgError::Underdetermined`] — fewer rows than columns.
/// * [`LinalgError::Singular`] — rank-deficient design matrix.
/// * [`LinalgError::ShapeMismatch`] — `b.len() != a.rows()`.
/// * [`LinalgError::NonFiniteInput`] — non-finite entries.
///
/// # Example
///
/// ```
/// use cps_linalg::{DMatrix, lstsq};
///
/// let a = DMatrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
/// let x = lstsq(&a, &[1.0, 3.0, 5.0]).unwrap();
/// assert!((x[1] - 2.0).abs() < 1e-10);
/// ```
pub fn lstsq(a: &DMatrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    QrDecomposition::new(a)?.solve(b)
}

/// Solves `min ‖A·x − b‖₂` via the normal equations `AᵀA·x = Aᵀb` with a
/// Cholesky factorization.
///
/// Faster than QR for tall-skinny systems but squares the condition
/// number; adequate for the well-conditioned local quadric fits.
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] — `b.len() != a.rows()`.
/// * [`LinalgError::NotPositiveDefinite`] — rank-deficient design matrix.
/// * [`LinalgError::NonFiniteInput`] — non-finite entries.
pub fn lstsq_normal(a: &DMatrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let gram = a.gram();
    let atb = a.transpose_mul_vec(b)?;
    solve_cholesky(&gram, &atb)
}

/// Fits a polynomial of the given `degree` to the points `(xs[i], ys[i])`
/// in the least-squares sense; returns coefficients lowest-order first.
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] — `xs` and `ys` differ in length.
/// * [`LinalgError::Underdetermined`] — fewer points than `degree + 1`.
/// * [`LinalgError::Singular`] — degenerate abscissae (e.g. all equal).
///
/// # Example
///
/// ```
/// use cps_linalg::polyfit;
///
/// let xs = [0.0, 1.0, 2.0, 3.0];
/// let ys: Vec<f64> = xs.iter().map(|x| 1.0 + 2.0 * x * x).collect();
/// let c = polyfit(&xs, &ys, 2).unwrap();
/// assert!((c[0] - 1.0).abs() < 1e-9 && (c[2] - 2.0).abs() < 1e-9);
/// ```
pub fn polyfit(xs: &[f64], ys: &[f64], degree: usize) -> Result<Vec<f64>, LinalgError> {
    if xs.len() != ys.len() {
        return Err(LinalgError::ShapeMismatch {
            expected: (xs.len(), 1),
            actual: (ys.len(), 1),
        });
    }
    let n = degree + 1;
    let mut design = DMatrix::zeros(xs.len(), n);
    for (r, &x) in xs.iter().enumerate() {
        let mut p = 1.0;
        for c in 0..n {
            design[(r, c)] = p;
            p *= x;
        }
    }
    lstsq(&design, ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadric_design(pts: &[(f64, f64)]) -> DMatrix {
        let mut d = DMatrix::zeros(pts.len(), 3);
        for (r, &(x, y)) in pts.iter().enumerate() {
            d[(r, 0)] = x * x;
            d[(r, 1)] = x * y;
            d[(r, 2)] = y * y;
        }
        d
    }

    #[test]
    fn qr_and_normal_agree_on_quadric_fit() {
        let pts = [
            (1.0, 0.0),
            (0.0, 1.0),
            (1.0, 1.0),
            (2.0, 1.0),
            (1.0, 2.0),
            (-1.0, 1.0),
            (0.5, -0.5),
        ];
        let (a, b, c) = (1.5, -0.5, 2.0);
        let z: Vec<f64> = pts
            .iter()
            .map(|&(x, y)| a * x * x + b * x * y + c * y * y)
            .collect();
        let design = quadric_design(&pts);
        let s1 = lstsq(&design, &z).unwrap();
        let s2 = lstsq_normal(&design, &z).unwrap();
        for (u, v) in s1.iter().zip(&s2) {
            assert!((u - v).abs() < 1e-8);
        }
        assert!((s1[0] - a).abs() < 1e-9);
        assert!((s1[1] - b).abs() < 1e-9);
        assert!((s1[2] - c).abs() < 1e-9);
    }

    #[test]
    fn noisy_fit_minimizes_residual() {
        // With noise, perturbing the LS solution must not decrease ‖r‖.
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let t = i as f64 / 3.0;
                (t.cos() * (1.0 + t / 10.0), t.sin() * (1.0 + t / 7.0))
            })
            .collect();
        let z: Vec<f64> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| x * x - 0.3 * x * y + 0.5 * y * y + 0.01 * ((i % 5) as f64 - 2.0))
            .collect();
        let design = quadric_design(&pts);
        let x = lstsq(&design, &z).unwrap();
        let base: f64 = design
            .mul_vec(&x)
            .unwrap()
            .iter()
            .zip(&z)
            .map(|(p, q)| (p - q) * (p - q))
            .sum();
        for delta in [[1e-3, 0.0, 0.0], [0.0, -1e-3, 0.0], [0.0, 0.0, 1e-3]] {
            let xp: Vec<f64> = x.iter().zip(&delta).map(|(v, d)| v + d).collect();
            let perturbed: f64 = design
                .mul_vec(&xp)
                .unwrap()
                .iter()
                .zip(&z)
                .map(|(p, q)| (p - q) * (p - q))
                .sum();
            assert!(perturbed >= base - 1e-12);
        }
    }

    #[test]
    fn polyfit_recovers_line_and_checks_shapes() {
        let c = polyfit(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0], 1).unwrap();
        assert!((c[0] - 1.0).abs() < 1e-10);
        assert!((c[1] - 2.0).abs() < 1e-10);
        assert!(polyfit(&[0.0, 1.0], &[1.0], 1).is_err());
        assert!(polyfit(&[0.0, 1.0], &[1.0, 2.0], 2).is_err()); // underdetermined
        assert!(polyfit(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0], 1).is_err()); // singular
    }
}
