//! Fixed-size 2-D and 3-D vectors.
//!
//! [`Vec2`] is the workhorse of the movement planner: virtual forces
//! (Eqns. 14–18 of the paper) are accumulated as `Vec2` values and the
//! resultant decides each node's heading. [`Vec3`] carries sampled surface
//! points `(x, y, z)`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector (or point offset) with `f64` components.
///
/// # Example
///
/// ```
/// use cps_linalg::Vec2;
///
/// let force = Vec2::new(3.0, 4.0);
/// assert_eq!(force.norm(), 5.0);
/// assert_eq!(force.normalized().norm(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vec2 {
    /// Component along the X axis.
    pub x: f64,
    /// Component along the Y axis.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean length (avoids the square root).
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (the z component of the 3-D cross product).
    ///
    /// Positive when `other` is counterclockwise from `self`.
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the same direction.
    ///
    /// Returns [`Vec2::ZERO`] when the vector has (near-)zero length, so
    /// that force resultants of magnitude ~0 produce no movement rather
    /// than a NaN heading.
    #[inline]
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n <= f64::EPSILON {
            Vec2::ZERO
        } else {
            Vec2::new(self.x / n, self.y / n)
        }
    }

    /// Clamps the vector's length to at most `max_len`, preserving
    /// direction. Used to enforce the node speed limit `v`.
    #[inline]
    pub fn clamp_norm(self, max_len: f64) -> Vec2 {
        debug_assert!(max_len >= 0.0, "max_len must be non-negative");
        let n = self.norm();
        if n > max_len && n > 0.0 {
            self * (max_len / n)
        } else {
            self
        }
    }

    /// Rotates the vector by `angle` radians counterclockwise.
    #[inline]
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Sum for Vec2 {
    fn sum<I: Iterator<Item = Vec2>>(iter: I) -> Vec2 {
        iter.fold(Vec2::ZERO, |acc, v| acc + v)
    }
}

impl From<(f64, f64)> for Vec2 {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Vec2::new(x, y)
    }
}

impl From<Vec2> for (f64, f64) {
    #[inline]
    fn from(v: Vec2) -> Self {
        (v.x, v.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A 3-D vector with `f64` components, used for surface points `(x, y, z)`.
///
/// # Example
///
/// ```
/// use cps_linalg::Vec3;
///
/// let a = Vec3::new(1.0, 0.0, 0.0);
/// let b = Vec3::new(0.0, 1.0, 0.0);
/// assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vec3 {
    /// Component along the X axis.
    pub x: f64,
    /// Component along the Y axis.
    pub y: f64,
    /// Component along the Z axis (the sensed environmental value).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_squared().sqrt()
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Projection onto the X-Y plane.
    #[inline]
    pub fn xy(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Returns `true` when all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl From<(f64, f64, f64)> for Vec3 {
    #[inline]
    fn from((x, y, z): (f64, f64, f64)) -> Self {
        Vec3::new(x, y, z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec2_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, Vec2::new(2.0, 4.0));
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn vec2_assign_ops() {
        let mut v = Vec2::new(1.0, 1.0);
        v += Vec2::new(2.0, 3.0);
        assert_eq!(v, Vec2::new(3.0, 4.0));
        v -= Vec2::new(1.0, 1.0);
        assert_eq!(v, Vec2::new(2.0, 3.0));
    }

    #[test]
    fn vec2_norm_and_dot() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_squared(), 25.0);
        assert_eq!(v.dot(Vec2::new(1.0, 0.0)), 3.0);
        assert_eq!(Vec2::new(1.0, 0.0).cross(Vec2::new(0.0, 1.0)), 1.0);
    }

    #[test]
    fn vec2_normalized_zero_is_zero() {
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
        let v = Vec2::new(0.0, 2.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vec2_clamp_norm() {
        let v = Vec2::new(6.0, 8.0);
        let c = v.clamp_norm(5.0);
        assert!((c.norm() - 5.0).abs() < 1e-12);
        // Direction preserved.
        assert!((c.normalized() - v.normalized()).norm() < 1e-12);
        // Short vectors untouched.
        assert_eq!(Vec2::new(1.0, 0.0).clamp_norm(5.0), Vec2::new(1.0, 0.0));
        // Zero clamp collapses to zero.
        assert_eq!(v.clamp_norm(0.0).norm(), 0.0);
    }

    #[test]
    fn vec2_rotation() {
        let v = Vec2::new(1.0, 0.0).rotated(std::f64::consts::FRAC_PI_2);
        assert!((v.x).abs() < 1e-12);
        assert!((v.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vec2_sum() {
        let total: Vec2 = [Vec2::new(1.0, 0.0), Vec2::new(0.0, 2.0)].into_iter().sum();
        assert_eq!(total, Vec2::new(1.0, 2.0));
    }

    #[test]
    fn vec2_conversions_and_display() {
        let v: Vec2 = (1.5, 2.5).into();
        let t: (f64, f64) = v.into();
        assert_eq!(t, (1.5, 2.5));
        assert_eq!(v.to_string(), "(1.5, 2.5)");
    }

    #[test]
    fn vec3_cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn vec3_projection_and_norm() {
        let p = Vec3::new(3.0, 4.0, 12.0);
        assert_eq!(p.xy(), Vec2::new(3.0, 4.0));
        assert_eq!(p.norm(), 13.0);
    }

    #[test]
    fn finiteness_checks() {
        assert!(Vec2::new(1.0, 2.0).is_finite());
        assert!(!Vec2::new(f64::NAN, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }
}
