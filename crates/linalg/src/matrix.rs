//! Heap-allocated dense matrix with `f64` entries.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::LinalgError;

/// A dense, row-major matrix of `f64` values.
///
/// Sized dynamically; intended for the small systems that appear in the
/// paper (design matrices with a few dozen rows and 3 columns for the
/// curvature quadric fit).
///
/// # Example
///
/// ```
/// use cps_linalg::DMatrix;
///
/// let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// let b = a.transpose();
/// assert_eq!(b[(0, 1)], 3.0);
/// let c = (a.clone() * b).unwrap();
/// assert_eq!(c[(0, 0)], 5.0); // 1*1 + 2*2
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMatrix {
    /// Creates a matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        DMatrix {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the rows have differing
    /// lengths, and treats an empty input as the 0×0 matrix.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() {
            return Ok(DMatrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::ShapeMismatch {
                    expected: (rows.len(), cols),
                    actual: (i + 1, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(DMatrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (rows, cols),
                actual: (data.len(), 1),
            });
        }
        Ok(DMatrix { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrows the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns entry `(r, c)` without bounds checks beyond the slice's own.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Returns one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> DMatrix {
        let mut t = DMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, 1),
                actual: (x.len(), 1),
            });
        }
        let out = (0..self.rows)
            .map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect();
        Ok(out)
    }

    /// Gram matrix `Aᵀ·A` (always square, `cols × cols`).
    pub fn gram(&self) -> DMatrix {
        let mut g = DMatrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut s = 0.0;
                for r in 0..self.rows {
                    s += self[(r, i)] * self[(r, j)];
                }
                g[(i, j)] = s;
                g[(j, i)] = s;
            }
        }
        g
    }

    /// `Aᵀ·b` for a right-hand side vector `b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.rows()`.
    pub fn transpose_mul_vec(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, 1),
                actual: (b.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[c] += self[(r, c)] * b[r];
            }
        }
        Ok(out)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Returns `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<(usize, usize)> for DMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for DMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add for DMatrix {
    type Output = Result<DMatrix, LinalgError>;

    fn add(self, rhs: DMatrix) -> Self::Output {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                expected: self.shape(),
                actual: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(DMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }
}

impl Sub for DMatrix {
    type Output = Result<DMatrix, LinalgError>;

    fn sub(self, rhs: DMatrix) -> Self::Output {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                expected: self.shape(),
                actual: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(DMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }
}

impl Mul for DMatrix {
    type Output = Result<DMatrix, LinalgError>;

    fn mul(self, rhs: DMatrix) -> Self::Output {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, rhs.cols),
                actual: rhs.shape(),
            });
        }
        let mut out = DMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        Ok(out)
    }
}

impl fmt::Display for DMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = DMatrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = DMatrix::identity(3);
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn from_rows_validates_shape() {
        let err = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::ShapeMismatch { .. }));
        let ok = DMatrix::from_rows(&[]).unwrap();
        assert_eq!(ok.shape(), (0, 0));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        let m = DMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn transpose_round_trip() {
        let m = DMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matrix_multiplication() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = DMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = (a * b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn multiplication_shape_mismatch() {
        let a = DMatrix::zeros(2, 3);
        let b = DMatrix::zeros(2, 3);
        assert!((a * b).is_err());
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = DMatrix::from_rows(&[&[1.0, -2.5], &[0.5, 3.0]]).unwrap();
        let i = DMatrix::identity(2);
        assert_eq!((a.clone() * i).unwrap(), a);
    }

    #[test]
    fn mul_vec_and_transpose_mul_vec() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        assert_eq!(a.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0, 11.0]);
        assert_eq!(
            a.transpose_mul_vec(&[1.0, 1.0, 1.0]).unwrap(),
            vec![9.0, 12.0]
        );
        assert!(a.mul_vec(&[1.0]).is_err());
        assert!(a.transpose_mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let g = a.gram();
        let explicit = (a.transpose() * a).unwrap();
        assert_eq!(g, explicit);
    }

    #[test]
    fn add_sub_frobenius() {
        let a = DMatrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        let b = DMatrix::from_rows(&[&[1.0, 1.0]]).unwrap();
        assert_eq!((a.clone() + b.clone()).unwrap()[(0, 0)], 4.0);
        assert_eq!((a.clone() - b).unwrap()[(0, 1)], 3.0);
        assert_eq!(a.frobenius_norm(), 5.0);
    }

    #[test]
    fn accessors() {
        let m = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.get(1, 1), Some(4.0));
        assert_eq!(m.get(2, 0), None);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert!(m.is_finite());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = DMatrix::zeros(1, 1);
        let _ = m[(1, 0)];
    }
}
