//! Small statistics helpers shared by the evaluation harnesses.

/// Arithmetic mean; `0.0` for an empty slice.
///
/// # Example
///
/// ```
/// assert_eq!(cps_linalg::mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(cps_linalg::mean(&[]), 0.0);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Root-mean-square error between two equally long series.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Example
///
/// ```
/// let e = cps_linalg::rmse(&[1.0, 2.0], &[1.0, 4.0]);
/// assert!((e - 2.0f64.sqrt()).abs() < 1e-12);
/// ```
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse requires equal-length series");
    if a.is_empty() {
        return 0.0;
    }
    let ss: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (ss / a.len() as f64).sqrt()
}

/// Summary statistics of a sample.
///
/// # Example
///
/// ```
/// use cps_linalg::Summary;
///
/// let s = Summary::from_values(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// assert_eq!(s.mean, 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum value (`+∞` for an empty sample).
    pub min: f64,
    /// Maximum value (`−∞` for an empty sample).
    pub max: f64,
    /// Arithmetic mean (`0` for an empty sample).
    pub mean: f64,
    /// Population standard deviation (`0` for an empty sample).
    pub std_dev: f64,
}

impl Summary {
    /// Computes summary statistics over `values`.
    pub fn from_values(values: &[f64]) -> Self {
        let count = values.len();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        let mean = mean(values);
        let var = if count == 0 {
            0.0
        } else {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64
        };
        Summary {
            count,
            min,
            max,
            mean,
            std_dev: var.sqrt(),
        }
    }

    /// Value range `max − min` (`−∞` for an empty sample).
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

impl Default for Summary {
    fn default() -> Self {
        Summary::from_values(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn rmse_identical_is_zero() {
        assert_eq!(rmse(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn rmse_length_mismatch_panics() {
        rmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::from_values(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.range(), 7.0);
    }

    #[test]
    fn summary_empty_sample() {
        let s = Summary::default();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std_dev, 0.0);
        assert!(s.min.is_infinite());
    }
}
