//! The queryable sensing dataset.

use cps_field::{GridField, KeyframeField};
use cps_geometry::{GridSpec, Point2, Rect};
use serde::{Deserialize, Serialize};

use crate::generator::{self, ForestConfig};
use crate::records::{Channel, NodeMeta, SensorReading};
use crate::TraceError;

/// Default Gaussian kernel bandwidth (metres) used to smooth scattered
/// node readings into the ground-truth grid field.
pub const DEFAULT_KERNEL_BANDWIDTH: f64 = 4.0;

/// A complete sensing trace: node metadata plus hourly readings,
/// queryable the way the experiments need.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    nodes: Vec<NodeMeta>,
    readings: Vec<SensorReading>,
    hours: u32,
    side: f64,
}

impl Dataset {
    /// Generates the synthetic trace for `config` (deterministic in the
    /// config).
    pub fn generate(config: &ForestConfig) -> Self {
        let (nodes, readings, model) = generator::generate(config);
        Dataset {
            nodes,
            readings,
            hours: config.hours,
            side: model.side(),
        }
    }

    /// Builds a dataset from explicit records (e.g. a real trace
    /// loaded from CSV).
    ///
    /// `side` is the plot size; readings referencing unknown nodes are
    /// rejected.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Parse`] when a reading references a node id
    /// not present in `nodes`.
    pub fn from_records(
        nodes: Vec<NodeMeta>,
        readings: Vec<SensorReading>,
        side: f64,
    ) -> Result<Self, TraceError> {
        let max_id = nodes.iter().map(|n| n.id).max();
        for (i, r) in readings.iter().enumerate() {
            if max_id.is_none_or(|m| r.node_id > m) {
                return Err(TraceError::Parse {
                    line: i + 1,
                    message: format!("reading references unknown node {}", r.node_id),
                });
            }
        }
        let hours = readings.iter().map(|r| r.hour + 1).max().unwrap_or(0);
        Ok(Dataset {
            nodes,
            readings,
            hours,
            side,
        })
    }

    /// Number of sensor nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Hours covered by the trace.
    pub fn hours(&self) -> u32 {
        self.hours
    }

    /// Side of the square forest plot, metres.
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Node metadata.
    pub fn nodes(&self) -> &[NodeMeta] {
        &self.nodes
    }

    /// All readings (hour-major order for generated traces).
    pub fn readings(&self) -> &[SensorReading] {
        &self.readings
    }

    /// Readings reported at `hour`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::HourOutOfRange`] for hours beyond the
    /// trace.
    pub fn readings_at(&self, hour: u32) -> Result<Vec<&SensorReading>, TraceError> {
        if hour >= self.hours {
            return Err(TraceError::HourOutOfRange {
                hour,
                available: self.hours,
            });
        }
        Ok(self.readings.iter().filter(|r| r.hour == hour).collect())
    }

    /// Smooths one channel's readings at `hour` into a `resolution ×
    /// resolution` grid field over `region` — the experiments' ground
    /// truth `f(x, y)` (the paper's Fig. 1 surface).
    ///
    /// Scattered readings are interpolated by Gaussian-kernel
    /// (Nadaraya–Watson) smoothing, which keeps the surface smooth
    /// enough to carry meaningful Gaussian curvature for the OSTD
    /// algorithms.
    ///
    /// # Errors
    ///
    /// * [`TraceError::HourOutOfRange`] — hour beyond the trace.
    /// * [`TraceError::EmptyRegion`] — no node within 3 bandwidths of
    ///   the region.
    /// * [`TraceError::Field`] — invalid grid construction.
    pub fn region_field(
        &self,
        region: Rect,
        channel: Channel,
        hour: u32,
        resolution: usize,
    ) -> Result<GridField, TraceError> {
        self.region_field_with_bandwidth(
            region,
            channel,
            hour,
            resolution,
            DEFAULT_KERNEL_BANDWIDTH,
        )
    }

    /// [`Dataset::region_field`] with an explicit kernel bandwidth.
    ///
    /// Larger bandwidths trade spatial detail for noise suppression;
    /// the OSTD experiments use a wider kernel than the default so the
    /// Gaussian-curvature signal reflects terrain rather than
    /// sensor-noise texture.
    ///
    /// # Errors
    ///
    /// As [`Dataset::region_field`]; additionally
    /// [`TraceError::Field`] when `bandwidth` is not positive.
    pub fn region_field_with_bandwidth(
        &self,
        region: Rect,
        channel: Channel,
        hour: u32,
        resolution: usize,
        bandwidth: f64,
    ) -> Result<GridField, TraceError> {
        if !bandwidth.is_finite() || bandwidth <= 0.0 {
            return Err(TraceError::Field(cps_field::FieldError::NonFiniteValue));
        }
        let readings = self.readings_at(hour)?;
        // Restrict to nodes near the region: the kernel's reach is
        // ~3 bandwidths.
        let margin = 3.0 * bandwidth;
        let expanded = region.expanded(margin);
        let local: Vec<(Point2, f64)> = readings
            .iter()
            .filter_map(|r| {
                let n = &self.nodes[r.node_id as usize];
                let p = Point2::new(n.x, n.y);
                expanded.contains(p).then(|| (p, r.channel(channel)))
            })
            .collect();
        if local.is_empty() {
            return Err(TraceError::EmptyRegion);
        }
        let grid =
            GridSpec::new(region, resolution, resolution).map_err(cps_field::FieldError::from)?;
        let two_h2 = 2.0 * bandwidth * bandwidth;
        let field = GridField::from_fn(grid, |p| {
            let mut num = 0.0;
            let mut den = 0.0;
            for &(q, z) in &local {
                let w = (-p.distance_squared(q) / two_h2).exp();
                num += w * z;
                den += w;
            }
            if den > 1e-300 {
                num / den
            } else {
                // Far from every node: fall back to the nearest one.
                local
                    .iter()
                    .min_by(|a, b| p.distance_squared(a.0).total_cmp(&p.distance_squared(b.0)))
                    .map(|&(_, z)| z)
                    .unwrap_or(0.0)
            }
        });
        Ok(field)
    }

    /// Builds a time-varying field from consecutive hourly snapshots,
    /// keyed in **minutes** (hour `h` sits at `t = 60·h`) — the ground
    /// truth for the OSTD simulations, which step in minutes.
    ///
    /// # Errors
    ///
    /// Propagates [`Dataset::region_field`] errors; `hour_range` must
    /// contain at least one hour.
    pub fn keyframe_field(
        &self,
        region: Rect,
        channel: Channel,
        hour_range: std::ops::Range<u32>,
        resolution: usize,
    ) -> Result<KeyframeField, TraceError> {
        self.keyframe_field_with_bandwidth(
            region,
            channel,
            hour_range,
            resolution,
            DEFAULT_KERNEL_BANDWIDTH,
        )
    }

    /// [`Dataset::keyframe_field`] with an explicit kernel bandwidth
    /// (see [`Dataset::region_field_with_bandwidth`]).
    ///
    /// # Errors
    ///
    /// As [`Dataset::keyframe_field`].
    pub fn keyframe_field_with_bandwidth(
        &self,
        region: Rect,
        channel: Channel,
        hour_range: std::ops::Range<u32>,
        resolution: usize,
        bandwidth: f64,
    ) -> Result<KeyframeField, TraceError> {
        let mut frames = Vec::new();
        for hour in hour_range {
            let f =
                self.region_field_with_bandwidth(region, channel, hour, resolution, bandwidth)?;
            frames.push((60.0 * hour as f64, f));
        }
        Ok(KeyframeField::new(frames)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_field::{Field, TimeVaryingField};

    fn small_dataset() -> Dataset {
        Dataset::generate(&ForestConfig {
            node_count: 300,
            hours: 14,
            ..ForestConfig::default()
        })
    }

    #[test]
    fn accessors() {
        let d = small_dataset();
        assert_eq!(d.node_count(), 300);
        assert_eq!(d.hours(), 14);
        assert!(d.side() > 141.0);
        assert_eq!(d.readings().len(), 300 * 14);
        assert_eq!(d.readings_at(10).unwrap().len(), 300);
        assert!(matches!(
            d.readings_at(99),
            Err(TraceError::HourOutOfRange { .. })
        ));
    }

    #[test]
    fn region_field_is_smooth_and_positive_at_ten() {
        let d = small_dataset();
        let region = Rect::new(Point2::new(20.0, 20.0), Point2::new(120.0, 120.0)).unwrap();
        let f = d.region_field(region, Channel::Light, 10, 51).unwrap();
        assert!(f.min_value() >= 0.0);
        assert!(f.max_value() > f.min_value());
        // Smoothness: neighboring grid values differ by a bounded step.
        let vals = f.values();
        let range = f.max_value() - f.min_value();
        for j in 0..51 {
            for i in 1..51 {
                let a = vals[j * 51 + i - 1];
                let b = vals[j * 51 + i];
                assert!((a - b).abs() < 0.5 * range, "jump at ({i},{j})");
            }
        }
    }

    #[test]
    fn empty_region_is_detected() {
        let nodes = vec![NodeMeta {
            id: 0,
            x: 5.0,
            y: 5.0,
        }];
        let readings = vec![SensorReading {
            node_id: 0,
            hour: 0,
            light: 1.0,
            temperature: 10.0,
            humidity: 80.0,
        }];
        let d = Dataset::from_records(nodes, readings, 200.0).unwrap();
        let far = Rect::new(Point2::new(150.0, 150.0), Point2::new(190.0, 190.0)).unwrap();
        assert!(matches!(
            d.region_field(far, Channel::Light, 0, 11),
            Err(TraceError::EmptyRegion)
        ));
    }

    #[test]
    fn from_records_validates_node_ids() {
        let nodes = vec![NodeMeta {
            id: 0,
            x: 1.0,
            y: 1.0,
        }];
        let bad = vec![SensorReading {
            node_id: 5,
            hour: 0,
            light: 1.0,
            temperature: 1.0,
            humidity: 1.0,
        }];
        assert!(matches!(
            Dataset::from_records(nodes, bad, 10.0),
            Err(TraceError::Parse { .. })
        ));
    }

    #[test]
    fn keyframes_interpolate_between_hours() {
        let d = small_dataset();
        let region = Rect::new(Point2::new(20.0, 20.0), Point2::new(120.0, 120.0)).unwrap();
        let kf = d
            .keyframe_field(region, Channel::Light, 10..13, 31)
            .unwrap();
        let p = Point2::new(60.0, 60.0);
        let at10 = kf.value_at(p, 600.0);
        let at11 = kf.value_at(p, 660.0);
        let mid = kf.value_at(p, 630.0);
        assert!((mid - 0.5 * (at10 + at11)).abs() < 1e-9);
        // Exact snapshot values at keyframe instants.
        let f10 = d.region_field(region, Channel::Light, 10, 31).unwrap();
        assert!((at10 - f10.value(p)).abs() < 1e-9);
    }
}
