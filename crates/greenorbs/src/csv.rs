//! CSV and JSON interchange for traces.
//!
//! The CSV layout mirrors what field deployments publish:
//! `node_id,hour,light,temperature,humidity`, one reading per line,
//! with a header. Node metadata travels separately as JSON.

use std::io::{BufRead, BufReader, Read, Write};

use crate::records::{NodeMeta, SensorReading};
use crate::{Dataset, TraceError};

/// CSV header for reading files.
pub const READINGS_HEADER: &str = "node_id,hour,light,temperature,humidity";

/// CSV header for node-metadata files.
pub const NODES_HEADER: &str = "id,x,y";

impl Dataset {
    /// Writes all readings as CSV. A mutable reference works as the
    /// writer (`&mut Vec<u8>`, `&mut File`, ...).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_readings_csv<W: Write>(&self, mut w: W) -> Result<(), TraceError> {
        writeln!(w, "{READINGS_HEADER}")?;
        for r in self.readings() {
            writeln!(
                w,
                "{},{},{:.6},{:.6},{:.6}",
                r.node_id, r.hour, r.light, r.temperature, r.humidity
            )?;
        }
        Ok(())
    }

    /// Parses readings CSV (as written by
    /// [`Dataset::write_readings_csv`]).
    ///
    /// # Errors
    ///
    /// * [`TraceError::Parse`] — malformed header, wrong field count,
    ///   or unparseable numbers (with the 1-based line number).
    /// * [`TraceError::Io`] — underlying reader failure.
    pub fn read_readings_csv<R: Read>(r: R) -> Result<Vec<SensorReading>, TraceError> {
        let reader = BufReader::new(r);
        let mut out = Vec::new();
        for (idx, line) in reader.lines().enumerate() {
            let line = line?;
            let lineno = idx + 1;
            if idx == 0 {
                if line.trim() != READINGS_HEADER {
                    return Err(TraceError::Parse {
                        line: lineno,
                        message: format!("unexpected header {line:?}"),
                    });
                }
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 5 {
                return Err(TraceError::Parse {
                    line: lineno,
                    message: format!("expected 5 fields, got {}", fields.len()),
                });
            }
            let parse_f = |s: &str, what: &str| -> Result<f64, TraceError> {
                s.trim().parse().map_err(|e| TraceError::Parse {
                    line: lineno,
                    message: format!("bad {what}: {e}"),
                })
            };
            let parse_u = |s: &str, what: &str| -> Result<u32, TraceError> {
                s.trim().parse().map_err(|e| TraceError::Parse {
                    line: lineno,
                    message: format!("bad {what}: {e}"),
                })
            };
            out.push(SensorReading {
                node_id: parse_u(fields[0], "node_id")?,
                hour: parse_u(fields[1], "hour")?,
                light: parse_f(fields[2], "light")?,
                temperature: parse_f(fields[3], "temperature")?,
                humidity: parse_f(fields[4], "humidity")?,
            });
        }
        Ok(out)
    }

    /// Writes node metadata as CSV (`id,x,y`).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_nodes_csv<W: Write>(&self, mut w: W) -> Result<(), TraceError> {
        writeln!(w, "{NODES_HEADER}")?;
        for n in self.nodes() {
            writeln!(w, "{},{:.6},{:.6}", n.id, n.x, n.y)?;
        }
        Ok(())
    }

    /// Parses node-metadata CSV (as written by
    /// [`Dataset::write_nodes_csv`]).
    ///
    /// # Errors
    ///
    /// [`TraceError::Parse`] for malformed content, [`TraceError::Io`]
    /// for reader failures.
    pub fn read_nodes_csv<R: Read>(r: R) -> Result<Vec<NodeMeta>, TraceError> {
        let reader = BufReader::new(r);
        let mut out = Vec::new();
        for (idx, line) in reader.lines().enumerate() {
            let line = line?;
            let lineno = idx + 1;
            if idx == 0 {
                if line.trim() != NODES_HEADER {
                    return Err(TraceError::Parse {
                        line: lineno,
                        message: format!("unexpected header {line:?}"),
                    });
                }
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 3 {
                return Err(TraceError::Parse {
                    line: lineno,
                    message: format!("expected 3 fields, got {}", fields.len()),
                });
            }
            let parse = |s: &str, what: &str| -> Result<f64, TraceError> {
                s.trim().parse().map_err(|e| TraceError::Parse {
                    line: lineno,
                    message: format!("bad {what}: {e}"),
                })
            };
            out.push(NodeMeta {
                id: fields[0].trim().parse().map_err(|e| TraceError::Parse {
                    line: lineno,
                    message: format!("bad id: {e}"),
                })?,
                x: parse(fields[1], "x")?,
                y: parse(fields[2], "y")?,
            });
        }
        Ok(out)
    }

    /// Serializes the whole dataset (nodes + readings) as JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn to_json(&self) -> Result<String, TraceError> {
        Ok(serde_json::to_string(self)?)
    }

    /// Restores a dataset from [`Dataset::to_json`] output.
    ///
    /// # Errors
    ///
    /// Propagates deserialization failures.
    pub fn from_json(s: &str) -> Result<Self, TraceError> {
        Ok(serde_json::from_str(s)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ForestConfig;

    fn tiny() -> Dataset {
        Dataset::generate(&ForestConfig {
            node_count: 10,
            hours: 3,
            ..ForestConfig::default()
        })
    }

    #[test]
    fn csv_round_trip() {
        let d = tiny();
        let mut buf = Vec::new();
        d.write_readings_csv(&mut buf).unwrap();
        let parsed = Dataset::read_readings_csv(buf.as_slice()).unwrap();
        assert_eq!(parsed.len(), d.readings().len());
        for (a, b) in parsed.iter().zip(d.readings()) {
            assert_eq!(a.node_id, b.node_id);
            assert_eq!(a.hour, b.hour);
            assert!((a.light - b.light).abs() < 1e-5);
        }
    }

    #[test]
    fn csv_rejects_malformed_input() {
        assert!(matches!(
            Dataset::read_readings_csv("wrong,header\n".as_bytes()),
            Err(TraceError::Parse { line: 1, .. })
        ));
        let bad_fields = format!("{READINGS_HEADER}\n1,2,3\n");
        assert!(matches!(
            Dataset::read_readings_csv(bad_fields.as_bytes()),
            Err(TraceError::Parse { line: 2, .. })
        ));
        let bad_number = format!("{READINGS_HEADER}\n1,2,abc,4,5\n");
        assert!(matches!(
            Dataset::read_readings_csv(bad_number.as_bytes()),
            Err(TraceError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn csv_skips_blank_lines() {
        let text = format!("{READINGS_HEADER}\n1,0,1.0,2.0,3.0\n\n2,0,4.0,5.0,6.0\n");
        let parsed = Dataset::read_readings_csv(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn nodes_csv_round_trip_and_validation() {
        let d = tiny();
        let mut buf = Vec::new();
        d.write_nodes_csv(&mut buf).unwrap();
        let parsed = Dataset::read_nodes_csv(buf.as_slice()).unwrap();
        assert_eq!(parsed.len(), d.nodes().len());
        for (a, b) in parsed.iter().zip(d.nodes()) {
            assert_eq!(a.id, b.id);
            assert!((a.x - b.x).abs() < 1e-5);
        }
        assert!(matches!(
            Dataset::read_nodes_csv("nope\n".as_bytes()),
            Err(TraceError::Parse { line: 1, .. })
        ));
        let bad = format!("{NODES_HEADER}\n1,2\n");
        assert!(matches!(
            Dataset::read_nodes_csv(bad.as_bytes()),
            Err(TraceError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn json_round_trip() {
        let d = tiny();
        let json = d.to_json().unwrap();
        let back = Dataset::from_json(&json).unwrap();
        assert_eq!(back.node_count(), d.node_count());
        assert_eq!(back.hours(), d.hours());
        assert_eq!(back.readings().len(), d.readings().len());
    }
}
