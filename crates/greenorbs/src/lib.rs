//! Synthetic GreenOrbs-style forest sensing trace.
//!
//! The paper's evaluation is trace-driven: light (KLux), temperature and
//! humidity collected hourly by 1000+ TelosB nodes in a ~20 000 m²
//! forest in Lin'an, China (the GreenOrbs project), with the referential
//! surface taken from a 100×100 m region at 10:00 on Nov 24, 2009.
//! That trace is not published in machine-readable form, so this crate
//! generates a statistically similar *synthetic* trace (see DESIGN.md,
//! "Substitutions"):
//!
//! * ~1000 virtual nodes scattered over a square forest plot;
//! * a latent light model — diurnal ambient sky light filtered through
//!   a canopy-transmission field with gap openings, plus sun flecks
//!   that drift with the sun angle;
//! * derived temperature and humidity channels;
//! * hourly per-node readings with measurement noise.
//!
//! The [`Dataset`] API is what a loader for the real trace would offer:
//! query readings, extract a smoothed [`cps_field::GridField`] for a
//! region at an hour (the experiments' ground truth `f(x, y)`), build a
//! time-varying [`cps_field::KeyframeField`], and round-trip through
//! CSV/JSON.
//!
//! # Example
//!
//! ```
//! use cps_greenorbs::{ForestConfig, Dataset};
//! use cps_geometry::{Point2, Rect};
//!
//! let dataset = Dataset::generate(&ForestConfig::default());
//! assert!(dataset.node_count() >= 1000);
//! // The paper's referential surface: light in a 100×100 m region at
//! // 10:00 of day 0.
//! let region = Rect::new(Point2::new(20.0, 20.0), Point2::new(120.0, 120.0)).unwrap();
//! let field = dataset
//!     .region_field(region, cps_greenorbs::Channel::Light, 10, 101)
//!     .unwrap();
//! assert!(field.max_value() > field.min_value());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod csv;
mod dataset;
mod error;
mod generator;
mod records;
mod stats;

pub use dataset::Dataset;
pub use error::TraceError;
pub use generator::{ForestConfig, LatentLightField};
pub use records::{Channel, NodeMeta, SensorReading};
pub use stats::DailyProfile;
