//! The synthetic forest generator.
//!
//! The latent environment is a physically motivated light model:
//!
//! * **ambient sky light** follows a diurnal curve, zero at night and
//!   peaking around solar noon;
//! * the **canopy** transmits a position-dependent fraction of it — a
//!   low base transmission with Gaussian *gap* openings where the crown
//!   is thin (these produce the bright patches visible in the paper's
//!   Fig. 1);
//! * **sun flecks** — small bright spots that drift westward over the
//!   day as the sun angle changes, making the field genuinely
//!   time-varying for the OSTD experiments;
//! * temperature follows the ambient curve with local light coupling;
//!   humidity runs inverse to temperature.
//!
//! Node readings add per-reading measurement noise. Everything is
//! seeded: the same [`ForestConfig`] always yields the same trace.

use cps_field::TimeVaryingField;
use cps_geometry::Point2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::records::{NodeMeta, SensorReading};

/// Configuration of the synthetic forest trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestConfig {
    /// RNG seed; the trace is a pure function of the configuration.
    pub seed: u64,
    /// Side of the square forest plot, metres. The default 141.4 m
    /// gives the paper's "nearly 20 000 square meters".
    pub side: f64,
    /// Number of sensor nodes (GreenOrbs: 1000+).
    pub node_count: usize,
    /// Hours of trace to generate.
    pub hours: u32,
    /// Hour-of-day of hour index 0 (readings are hourly).
    pub start_hour_of_day: u32,
    /// Number of canopy gaps.
    pub gap_count: usize,
    /// Number of drifting sun flecks.
    pub fleck_count: usize,
    /// Standard deviation of per-reading measurement noise, as a
    /// fraction of the channel's typical scale.
    pub noise: f64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            seed: 0x9e3779b97f4a7c15,
            side: 141.4,
            node_count: 1000,
            hours: 24,
            start_hour_of_day: 0,
            gap_count: 8,
            fleck_count: 18,
            noise: 0.005,
        }
    }
}

/// A Gaussian feature of the latent model.
#[derive(Debug, Clone, Copy)]
struct Feature {
    center: Point2,
    amplitude: f64,
    sigma_x: f64,
    sigma_y: f64,
    /// Drift of the centre per hour past solar noon (sun-fleck motion).
    drift: (f64, f64),
}

impl Feature {
    fn value(&self, p: Point2, hours_past_noon: f64) -> f64 {
        let cx = self.center.x + self.drift.0 * hours_past_noon;
        let cy = self.center.y + self.drift.1 * hours_past_noon;
        let dx = (p.x - cx) / self.sigma_x;
        let dy = (p.y - cy) / self.sigma_y;
        self.amplitude * (-0.5 * (dx * dx + dy * dy)).exp()
    }
}

/// The latent (noise-free) environment model.
#[derive(Debug, Clone)]
pub(crate) struct LatentModel {
    side: f64,
    start_hour_of_day: u32,
    gaps: Vec<Feature>,
    flecks: Vec<Feature>,
    /// Smooth large-scale canopy-density variation.
    density_waves: Vec<(f64, f64, f64, f64)>, // (kx, ky, phase, amp)
}

impl LatentModel {
    fn new(cfg: &ForestConfig, rng: &mut StdRng) -> Self {
        // Canopy gaps cluster into a few clearings (blowdowns, old
        // logging patches): most of the plot is deep shade, and the
        // photic structure concentrates where the crown is open. This
        // clustering is what makes non-uniform node densities pay off.
        let clearing_count = 3.max(cfg.gap_count / 4).min(4);
        let clearings: Vec<Point2> = (0..clearing_count)
            .map(|_| {
                Point2::new(
                    rng.gen_range(0.28 * cfg.side..0.72 * cfg.side),
                    rng.gen_range(0.28 * cfg.side..0.72 * cfg.side),
                )
            })
            .collect();
        let mut gaps = Vec::with_capacity(cfg.gap_count);
        for i in 0..cfg.gap_count {
            let host = clearings[i % clearings.len()];
            gaps.push(Feature {
                center: Point2::new(
                    (host.x + rng.gen_range(-10.0..10.0)).clamp(0.0, cfg.side),
                    (host.y + rng.gen_range(-10.0..10.0)).clamp(0.0, cfg.side),
                ),
                amplitude: rng.gen_range(0.1..0.3),
                sigma_x: rng.gen_range(5.0..9.0),
                sigma_y: rng.gen_range(5.0..9.0),
                drift: (0.0, 0.0),
            });
        }
        // Sun flecks live *inside* canopy gaps (light only reaches the
        // floor where the crown is open), so the fine detail of the
        // field is spatially clustered — the property that makes
        // curvature-weighted node densities pay off.
        let mut flecks = Vec::with_capacity(cfg.fleck_count);
        for i in 0..cfg.fleck_count {
            let host = &gaps[i % gaps.len().max(1)];
            let cx = host.center.x + rng.gen_range(-1.0..1.0) * host.sigma_x;
            let cy = host.center.y + rng.gen_range(-1.0..1.0) * host.sigma_y;
            flecks.push(Feature {
                center: Point2::new(cx.clamp(0.0, cfg.side), cy.clamp(0.0, cfg.side)),
                amplitude: rng.gen_range(0.4..0.9),
                sigma_x: rng.gen_range(4.5..7.0),
                sigma_y: rng.gen_range(4.5..7.0),
                // Flecks slide west-ish as the sun moves east→west.
                drift: (rng.gen_range(-4.0..-1.5), rng.gen_range(-1.0..1.0)),
            });
        }
        let mut density_waves = Vec::new();
        for _ in 0..3 {
            density_waves.push((
                rng.gen_range(0.01..0.05),
                rng.gen_range(0.01..0.05),
                rng.gen_range(0.0..std::f64::consts::TAU),
                rng.gen_range(0.02..0.06),
            ));
        }
        LatentModel {
            side: cfg.side,
            start_hour_of_day: cfg.start_hour_of_day,
            gaps,
            flecks,
            density_waves,
        }
    }

    /// Hour-of-day of trace hour `hour` (fractional hours allowed).
    fn hour_of_day(&self, hour: f64) -> f64 {
        (self.start_hour_of_day as f64 + hour).rem_euclid(24.0)
    }

    /// Ambient above-canopy illumination, KLux.
    fn ambient(&self, hour: f64) -> f64 {
        let h = self.hour_of_day(hour);
        if !(6.0..=18.0).contains(&h) {
            return 0.0;
        }
        // Peaks at 60 KLux around solar noon; the clipped sine gives a
        // mid-day plateau (thin-cloud diffusion), so morning experiment
        // windows are not dominated by the raw brightness ramp.
        (60.0 * 1.3 * (std::f64::consts::PI * (h - 6.0) / 12.0).sin().max(0.0)).min(60.0)
    }

    /// Canopy transmission fraction at `p` (0..1-ish).
    fn transmission(&self, p: Point2, hours_past_noon: f64) -> f64 {
        let mut t = 0.04; // deep-shade base
        for (kx, ky, phase, amp) in &self.density_waves {
            t += 0.4 * amp * (kx * p.x + ky * p.y + phase).sin().abs();
        }
        for g in &self.gaps {
            t += g.value(p, 0.0);
        }
        for f in &self.flecks {
            t += f.value(p, hours_past_noon);
        }
        t.clamp(0.0, 0.95)
    }

    /// Light in KLux at position `p` and fractional trace hour `hour`.
    pub(crate) fn light(&self, p: Point2, hour: f64) -> f64 {
        let h = self.hour_of_day(hour);
        self.ambient(hour) * self.transmission(p, h - 12.0)
    }

    /// Temperature in °C.
    pub(crate) fn temperature(&self, p: Point2, hour: f64) -> f64 {
        // Base 8 °C at night, up to ~+10 °C at noon, plus a light
        // coupling (sunlit spots are warmer).
        8.0 + 10.0 * self.ambient(hour) / 60.0 + 0.08 * self.light(p, hour)
    }

    /// Relative humidity in %.
    pub(crate) fn humidity(&self, p: Point2, hour: f64) -> f64 {
        (95.0 - 2.2 * (self.temperature(p, hour) - 8.0)).clamp(20.0, 100.0)
    }

    /// Side of the plot.
    pub(crate) fn side(&self) -> f64 {
        self.side
    }
}

/// The *true* (noise-free) light environment behind a synthetic trace,
/// as a continuous time-varying field with time in **minutes**
/// (matching the OSTD simulator's clock: hour `h` is `t = 60·h`).
///
/// The OSTD experiments evaluate exploration against this latent truth:
/// mobile nodes sample the real environment, and reconstruction quality
/// is judged against the environment itself rather than against a
/// smoothed re-interpolation of the scattered trace (whose kernel
/// texture would dominate the curvature signal).
///
/// # Example
///
/// ```
/// use cps_field::TimeVaryingField;
/// use cps_geometry::Point2;
/// use cps_greenorbs::{ForestConfig, LatentLightField};
///
/// let field = LatentLightField::new(&ForestConfig::default());
/// let noon = field.value_at(Point2::new(70.0, 70.0), 12.0 * 60.0);
/// let night = field.value_at(Point2::new(70.0, 70.0), 2.0 * 60.0);
/// assert!(noon > night);
/// ```
#[derive(Debug, Clone)]
pub struct LatentLightField {
    model: LatentModel,
}

impl LatentLightField {
    /// Builds the latent field for `config` (the same one that
    /// generated / would generate the trace readings).
    pub fn new(config: &ForestConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        LatentLightField {
            model: LatentModel::new(config, &mut rng),
        }
    }

    /// Side of the forest plot, metres.
    pub fn side(&self) -> f64 {
        self.model.side()
    }
}

impl TimeVaryingField for LatentLightField {
    fn value_at(&self, p: Point2, t: f64) -> f64 {
        self.model.light(p, t / 60.0)
    }
}

/// Generates node metadata, readings and the latent model.
pub(crate) fn generate(cfg: &ForestConfig) -> (Vec<NodeMeta>, Vec<SensorReading>, LatentModel) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let model = LatentModel::new(cfg, &mut rng);

    let nodes: Vec<NodeMeta> = (0..cfg.node_count)
        .map(|id| NodeMeta {
            id: id as u32,
            x: rng.gen_range(0.0..cfg.side),
            y: rng.gen_range(0.0..cfg.side),
        })
        .collect();

    let mut readings = Vec::with_capacity(cfg.node_count * cfg.hours as usize);
    for hour in 0..cfg.hours {
        for n in &nodes {
            let p = Point2::new(n.x, n.y);
            let t = hour as f64;
            let light = model.light(p, t);
            let temperature = model.temperature(p, t);
            let humidity = model.humidity(p, t);
            readings.push(SensorReading {
                node_id: n.id,
                hour,
                light: (light * (1.0 + cfg.noise * rng.gen_range(-1.0..1.0))).max(0.0),
                temperature: temperature + 20.0 * cfg.noise * rng.gen_range(-1.0..1.0),
                humidity: (humidity * (1.0 + cfg.noise * rng.gen_range(-1.0..1.0)))
                    .clamp(0.0, 100.0),
            });
        }
    }
    (nodes, readings, model)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ForestConfig {
        ForestConfig {
            node_count: 50,
            hours: 24,
            ..ForestConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (n1, r1, _) = generate(&small());
        let (n2, r2, _) = generate(&small());
        assert_eq!(n1, n2);
        assert_eq!(r1, r2);
        let other = ForestConfig { seed: 1, ..small() };
        let (n3, _, _) = generate(&other);
        assert_ne!(n1, n3);
    }

    #[test]
    fn counts_and_bounds() {
        let cfg = small();
        let (nodes, readings, _) = generate(&cfg);
        assert_eq!(nodes.len(), 50);
        assert_eq!(readings.len(), 50 * 24);
        assert!(nodes.iter().all(|n| (0.0..=cfg.side).contains(&n.x)));
        assert!(readings.iter().all(|r| r.light >= 0.0));
        assert!(readings.iter().all(|r| (0.0..=100.0).contains(&r.humidity)));
    }

    #[test]
    fn night_is_dark_noon_is_bright() {
        let (_, readings, _) = generate(&small());
        let at = |h: u32| -> f64 {
            let rs: Vec<f64> = readings
                .iter()
                .filter(|r| r.hour == h)
                .map(|r| r.light)
                .collect();
            rs.iter().sum::<f64>() / rs.len() as f64
        };
        assert_eq!(at(2), 0.0); // 02:00 — night
        assert!(at(12) > 1.0); // noon — canopy-filtered daylight
        assert!(at(12) > at(8));
    }

    #[test]
    fn temperature_tracks_daylight_and_humidity_inverts() {
        let (_, readings, _) = generate(&small());
        let mean = |h: u32, f: fn(&SensorReading) -> f64| -> f64 {
            let v: Vec<f64> = readings.iter().filter(|r| r.hour == h).map(f).collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(mean(12, |r| r.temperature) > mean(2, |r| r.temperature));
        assert!(mean(12, |r| r.humidity) < mean(2, |r| r.humidity));
    }

    #[test]
    fn flecks_move_between_hours() {
        // The light field at a fixed point changes shape between 10:00
        // and 14:00 by more than the pure ambient rescaling.
        let (_, _, model) = generate(&small());
        let p = Point2::new(50.0, 50.0);
        let q = Point2::new(90.0, 90.0);
        let ratio_p = model.light(p, 14.0) / model.light(p, 10.0).max(1e-9);
        let ratio_q = model.light(q, 14.0) / model.light(q, 10.0).max(1e-9);
        // Pure rescaling would give identical ratios everywhere.
        assert!((ratio_p - ratio_q).abs() > 1e-3);
    }
}
