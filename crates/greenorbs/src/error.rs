//! Error type for trace generation and loading.

use std::error::Error;
use std::fmt;

/// Errors produced by the trace substrate.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// The requested hour is outside the dataset's time range.
    HourOutOfRange {
        /// Requested hour index.
        hour: u32,
        /// Hours available in the dataset.
        available: u32,
    },
    /// The requested region contains no sensor nodes.
    EmptyRegion,
    /// A record failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// An underlying field operation failed.
    Field(cps_field::FieldError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::HourOutOfRange { hour, available } => {
                write!(
                    f,
                    "hour {hour} out of range (dataset has {available} hours)"
                )
            }
            TraceError::EmptyRegion => write!(f, "requested region contains no sensor nodes"),
            TraceError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            TraceError::Io(e) => write!(f, "i/o error: {e}"),
            TraceError::Json(e) => write!(f, "json error: {e}"),
            TraceError::Field(e) => write!(f, "field error: {e}"),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Json(e) => Some(e),
            TraceError::Field(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<serde_json::Error> for TraceError {
    fn from(e: serde_json::Error) -> Self {
        TraceError::Json(e)
    }
}

impl From<cps_field::FieldError> for TraceError {
    fn from(e: cps_field::FieldError) -> Self {
        TraceError::Field(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TraceError::HourOutOfRange {
            hour: 30,
            available: 24,
        };
        assert!(e.to_string().contains("hour 30"));
        assert!(TraceError::EmptyRegion.to_string().contains("region"));
        let p = TraceError::Parse {
            line: 3,
            message: "bad float".into(),
        };
        assert!(p.to_string().contains("line 3"));
    }
}
