//! Record types of the sensing trace.

use serde::{Deserialize, Serialize};

/// Environmental channels recorded by each node, matching the
/// GreenOrbs deployment (light, temperature, humidity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Channel {
    /// Illumination in KLux (the paper's referential surface).
    Light,
    /// Air temperature in °C.
    Temperature,
    /// Relative humidity in %.
    Humidity,
}

impl Channel {
    /// All channels, in storage order.
    pub const ALL: [Channel; 3] = [Channel::Light, Channel::Temperature, Channel::Humidity];

    /// Unit string for display.
    pub fn unit(&self) -> &'static str {
        match self {
            Channel::Light => "KLux",
            Channel::Temperature => "°C",
            Channel::Humidity => "%",
        }
    }
}

impl std::fmt::Display for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Channel::Light => write!(f, "light"),
            Channel::Temperature => write!(f, "temperature"),
            Channel::Humidity => write!(f, "humidity"),
        }
    }
}

/// Static metadata of one sensor node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeMeta {
    /// Dense node identifier, `0..node_count`.
    pub id: u32,
    /// Easting within the forest plot, metres.
    pub x: f64,
    /// Northing within the forest plot, metres.
    pub y: f64,
}

/// One hourly measurement by one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorReading {
    /// Reporting node.
    pub node_id: u32,
    /// Hour index since the start of the trace (hour 0 = the trace's
    /// `start_hour` on day 0).
    pub hour: u32,
    /// Illumination, KLux.
    pub light: f64,
    /// Air temperature, °C.
    pub temperature: f64,
    /// Relative humidity, %.
    pub humidity: f64,
}

impl SensorReading {
    /// The value of one channel.
    pub fn channel(&self, channel: Channel) -> f64 {
        match channel {
            Channel::Light => self.light,
            Channel::Temperature => self.temperature,
            Channel::Humidity => self.humidity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_accessors() {
        let r = SensorReading {
            node_id: 7,
            hour: 10,
            light: 12.5,
            temperature: 18.0,
            humidity: 64.0,
        };
        assert_eq!(r.channel(Channel::Light), 12.5);
        assert_eq!(r.channel(Channel::Temperature), 18.0);
        assert_eq!(r.channel(Channel::Humidity), 64.0);
    }

    #[test]
    fn channel_display_and_units() {
        assert_eq!(Channel::Light.to_string(), "light");
        assert_eq!(Channel::Light.unit(), "KLux");
        assert_eq!(Channel::Humidity.unit(), "%");
        assert_eq!(Channel::ALL.len(), 3);
    }

    #[test]
    fn records_serde_round_trip() {
        let n = NodeMeta {
            id: 3,
            x: 1.5,
            y: 2.5,
        };
        let json = serde_json::to_string(&n).unwrap();
        let back: NodeMeta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, n);
    }
}
