//! Trace statistics: per-channel daily profiles and node-level
//! summaries, the sanity checks a trace consumer runs before trusting
//! the data.

use cps_linalg::Summary;

use crate::records::Channel;
use crate::{Dataset, TraceError};

/// Hourly profile of one channel: summary statistics per trace hour.
#[derive(Debug, Clone, PartialEq)]
pub struct DailyProfile {
    /// The profiled channel.
    pub channel: Channel,
    /// `per_hour[h]` summarizes every node's reading at hour `h`.
    pub per_hour: Vec<Summary>,
}

impl DailyProfile {
    /// Hour with the highest mean reading, if the trace is non-empty.
    pub fn peak_hour(&self) -> Option<u32> {
        (0..self.per_hour.len())
            .max_by(|&a, &b| self.per_hour[a].mean.total_cmp(&self.per_hour[b].mean))
            .map(|h| h as u32)
    }
}

impl Dataset {
    /// Computes the hourly profile of one channel over the whole trace.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::HourOutOfRange`] only for an empty trace
    /// (zero hours).
    pub fn daily_profile(&self, channel: Channel) -> Result<DailyProfile, TraceError> {
        if self.hours() == 0 {
            return Err(TraceError::HourOutOfRange {
                hour: 0,
                available: 0,
            });
        }
        let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); self.hours() as usize];
        for r in self.readings() {
            buckets[r.hour as usize].push(r.channel(channel));
        }
        Ok(DailyProfile {
            channel,
            per_hour: buckets.iter().map(|b| Summary::from_values(b)).collect(),
        })
    }

    /// Per-node mean of one channel across the whole trace, indexed by
    /// node id (0 for nodes that never reported).
    pub fn node_means(&self, channel: Channel) -> Vec<f64> {
        let n = self.node_count();
        let mut sums = vec![0.0; n];
        let mut counts = vec![0usize; n];
        for r in self.readings() {
            let id = r.node_id as usize;
            if id < n {
                sums[id] += r.channel(channel);
                counts[id] += 1;
            }
        }
        sums.iter()
            .zip(&counts)
            .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect()
    }

    /// The node ids with the highest mean reading of `channel` — e.g.
    /// the sunniest spots of the plot.
    pub fn top_nodes(&self, channel: Channel, count: usize) -> Vec<u32> {
        let means = self.node_means(channel);
        let mut ids: Vec<u32> = (0..means.len() as u32).collect();
        ids.sort_by(|&a, &b| means[b as usize].total_cmp(&means[a as usize]));
        ids.truncate(count);
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ForestConfig;

    fn dataset() -> Dataset {
        Dataset::generate(&ForestConfig {
            node_count: 120,
            hours: 24,
            ..ForestConfig::default()
        })
    }

    #[test]
    fn light_profile_peaks_near_noon_and_is_dark_at_night() {
        let profile = dataset().daily_profile(Channel::Light).unwrap();
        assert_eq!(profile.per_hour.len(), 24);
        let peak = profile.peak_hour().unwrap();
        assert!((10..=14).contains(&peak), "light peaked at {peak}");
        assert_eq!(profile.per_hour[2].mean, 0.0);
        assert_eq!(profile.per_hour[2].count, 120);
    }

    #[test]
    fn humidity_profile_dips_at_midday() {
        let profile = dataset().daily_profile(Channel::Humidity).unwrap();
        let night = profile.per_hour[2].mean;
        let noon = profile.per_hour[12].mean;
        assert!(noon < night);
    }

    #[test]
    fn node_means_and_top_nodes_are_consistent() {
        let d = dataset();
        let means = d.node_means(Channel::Light);
        assert_eq!(means.len(), 120);
        let top = d.top_nodes(Channel::Light, 5);
        assert_eq!(top.len(), 5);
        // Top nodes really do have the largest means.
        let floor = means[top[4] as usize];
        let better: usize = means.iter().filter(|&&m| m > floor).count();
        assert!(better <= 4);
        // Sunniest node beats the average node handily.
        let avg = means.iter().sum::<f64>() / means.len() as f64;
        assert!(means[top[0] as usize] > avg);
    }

    #[test]
    fn empty_trace_is_rejected() {
        let d = Dataset::from_records(vec![], vec![], 10.0).unwrap();
        assert!(d.daily_profile(Channel::Light).is_err());
    }
}
