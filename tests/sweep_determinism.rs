//! Cross-crate guarantees of the batch sweep engine: aggregate JSON is
//! bit-identical regardless of worker count, and an interrupted sweep
//! resumed from its manifest finishes byte-identical to a run that was
//! never interrupted.

use std::fs;
use std::path::PathBuf;

use cps_field::{GaussianBlob, Static};
use cps_geometry::Point2;
use cps_sim::sweep::{run_sweep, SweepJob, SweepManifest, SweepSpec};

fn spec() -> SweepSpec {
    SweepSpec {
        seeds: vec![1, 2, 3],
        k: vec![9, 16],
        comm_radius: vec![10.0],
        faults: vec![String::new(), "seed=7,kill=0@1".to_string()],
        minutes: 3,
        sample_every: 1,
        resolution: 31,
        ..SweepSpec::default()
    }
}

fn field_for(job: &SweepJob) -> Static<GaussianBlob> {
    Static::new(GaussianBlob::isotropic(
        Point2::new(40.0 + job.seed as f64 * 11.0, 70.0),
        45.0,
        18.0,
    ))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cps_sweep_it_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn aggregate_json_is_bit_identical_across_worker_counts() {
    let spec = spec();
    let reference = run_sweep(&spec, 1, None, false, field_for)
        .unwrap()
        .to_json()
        .unwrap();
    for workers in [2, 8] {
        let json = run_sweep(&spec, workers, None, false, field_for)
            .unwrap()
            .to_json()
            .unwrap();
        assert_eq!(
            reference, json,
            "aggregates drifted at {workers} workers — the fixed-order fold is broken"
        );
    }
}

#[test]
fn interrupted_sweep_resumes_to_byte_identical_output() {
    let dir = temp_dir("resume");
    let manifest_path = dir.join("sweep.manifest");
    let spec = spec();
    let digest = spec.digest().unwrap();
    let jobs = spec.jobs();

    // The uninterrupted reference (writing its own manifest as it goes).
    let reference = run_sweep(&spec, 2, Some(&manifest_path), false, field_for).unwrap();
    let reference_json = reference.to_json().unwrap();

    // Simulate a mid-sweep kill: a manifest that only saw some of the
    // jobs complete, in an arbitrary (non-prefix) order.
    let mut partial = SweepManifest::create(&manifest_path, digest).unwrap();
    for i in [5usize, 0, 9, 2] {
        partial
            .record(
                i as u64,
                jobs[i].digest(digest),
                reference.outcomes[i].clone(),
            )
            .unwrap();
    }
    let resumed = run_sweep(&spec, 8, Some(&manifest_path), true, field_for).unwrap();
    assert_eq!(
        reference_json,
        resumed.to_json().unwrap(),
        "resume must replay recorded outcomes and recompute the rest, byte-identically"
    );

    // A second resume finds everything recorded and recomputes nothing.
    let replayed = run_sweep(&spec, 1, Some(&manifest_path), true, field_for).unwrap();
    assert_eq!(reference_json, replayed.to_json().unwrap());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn manifests_from_a_different_spec_are_rejected_not_reused() {
    let dir = temp_dir("foreign");
    let manifest_path = dir.join("sweep.manifest");
    let spec_a = spec();
    run_sweep(&spec_a, 2, Some(&manifest_path), false, field_for).unwrap();

    let spec_b = SweepSpec {
        minutes: 4, // different grid ⇒ different digest
        ..spec()
    };
    let err = run_sweep(&spec_b, 2, Some(&manifest_path), true, field_for).unwrap_err();
    assert!(
        matches!(err, cps_core::CoreError::SnapshotCorrupt { .. }),
        "foreign manifest must be a typed rejection, got {err:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fault_axis_cells_record_deaths_and_survivors() {
    let spec = spec();
    let results = run_sweep(&spec, 2, None, false, field_for).unwrap();
    assert_eq!(results.cells.len(), 4);
    for pair in results.cells.chunks(2) {
        let (clean, faulty) = (&pair[0], &pair[1]);
        assert!(clean.fault_spec.is_empty());
        assert_eq!(faulty.fault_spec, "seed=7,kill=0@1");
        assert_eq!(clean.mean_deaths, 0.0);
        assert!(faulty.mean_deaths >= 1.0, "the scheduled kill must land");
        assert!(faulty.mean_alive < clean.mean_alive);
    }
}
