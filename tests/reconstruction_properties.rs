//! Property tests on the reconstruction + δ pipeline, across crates.

use cps::field::{delta, Field, GaussianBlob, GaussianMixtureField, ReconstructedSurface};
use cps::geometry::{GridSpec, Point2, Rect};
use proptest::prelude::*;

const SIDE: f64 = 50.0;

fn positions_strategy() -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec((1u32..=99, 1u32..=99), 4..25).prop_map(|raw| {
        let mut v: Vec<(u32, u32)> = raw;
        v.sort_unstable();
        v.dedup();
        v.into_iter()
            .map(|(i, j)| Point2::new(f64::from(i) * 0.5, f64::from(j) * 0.5))
            .collect()
    })
}

fn bumpy_field() -> GaussianMixtureField {
    GaussianMixtureField::new(
        3.0,
        vec![
            GaussianBlob::isotropic(Point2::new(15.0, 35.0), 10.0, 5.0),
            GaussianBlob::isotropic(Point2::new(35.0, 15.0), -4.0, 7.0),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The rebuilt surface passes exactly through every sample.
    #[test]
    fn reconstruction_interpolates_its_samples(positions in positions_strategy()) {
        prop_assume!(positions.len() >= 3);
        let region = Rect::square(SIDE).unwrap();
        let field = bumpy_field();
        let samples: Vec<f64> = positions.iter().map(|&p| field.value(p)).collect();
        let surface = ReconstructedSurface::from_samples(region, &positions, &samples).unwrap();
        for (&p, &z) in positions.iter().zip(&samples) {
            prop_assert!((surface.value(p) - z).abs() < 1e-6, "at {p}: {} vs {z}", surface.value(p));
        }
    }

    /// δ of a surface against itself is exactly zero, and against the
    /// reference it is non-negative and finite.
    #[test]
    fn delta_axioms(positions in positions_strategy()) {
        prop_assume!(positions.len() >= 3);
        let region = Rect::square(SIDE).unwrap();
        let grid = GridSpec::new(region, 26, 26).unwrap();
        let field = bumpy_field();
        let samples: Vec<f64> = positions.iter().map(|&p| field.value(p)).collect();
        let surface = ReconstructedSurface::from_samples(region, &positions, &samples).unwrap();
        prop_assert_eq!(delta::volume_difference(&surface, &surface, &grid), 0.0);
        let d = delta::volume_difference(&field, &surface, &grid);
        prop_assert!(d.is_finite() && d >= 0.0);
        // Theorem 3.1: union − intersection == ∬|f − g|.
        let u = delta::union_volume(&field, &surface, &grid);
        let i = delta::intersection_volume(&field, &surface, &grid);
        prop_assert!((u - i - d).abs() < 1e-6);
    }

    /// Adding the grid points of the evaluation grid as samples drives
    /// δ towards zero (denser sampling can't hurt on this smooth field).
    #[test]
    fn denser_sampling_does_not_hurt(seed_positions in positions_strategy()) {
        prop_assume!(seed_positions.len() >= 3);
        let region = Rect::square(SIDE).unwrap();
        let grid = GridSpec::new(region, 26, 26).unwrap();
        let field = bumpy_field();

        let sparse_samples: Vec<f64> = seed_positions.iter().map(|&p| field.value(p)).collect();
        let sparse = ReconstructedSurface::from_samples(region, &seed_positions, &sparse_samples).unwrap();
        let d_sparse = delta::volume_difference(&field, &sparse, &grid);

        // Dense: every grid point is a sample → reconstruction error at
        // grid points is zero, so δ collapses to quadrature noise.
        let dense_positions: Vec<Point2> = grid.iter().map(|(_, _, p)| p).collect();
        let dense_samples: Vec<f64> = dense_positions.iter().map(|&p| field.value(p)).collect();
        let dense = ReconstructedSurface::from_samples(region, &dense_positions, &dense_samples).unwrap();
        let d_dense = delta::volume_difference(&field, &dense, &grid);

        prop_assert!(d_dense <= d_sparse + 1e-9, "dense {d_dense} vs sparse {d_sparse}");
        prop_assert!(d_dense < 1e-6, "dense sampling should nearly eliminate delta, got {d_dense}");
    }
}
