//! Integration: the full OSTD pipeline — latent environment → mobile
//! simulation with CMA + LCM → δ timeline — spanning every crate.

use cps::core::DeltaEvaluator;
use cps::field::TimeVaryingField;
use cps::geometry::{GridSpec, Point2, Rect};
use cps::greenorbs::{ForestConfig, LatentLightField};
use cps::network::UnitDiskGraph;
use cps::sim::{scenario, CmaBuilder, ConvergenceDetector, DeltaTimeline};

fn scenario_setup() -> (LatentLightField, Rect, GridSpec) {
    let field = LatentLightField::new(&ForestConfig::default());
    let region = Rect::new(Point2::new(20.0, 20.0), Point2::new(120.0, 120.0)).unwrap();
    let grid = GridSpec::new(region, 51, 51).unwrap();
    (field, region, grid)
}

#[test]
fn cma_keeps_the_network_connected_through_45_minutes() {
    let (field, region, _grid) = scenario_setup();
    let start = scenario::grid_start_spaced(region, 100, 9.3).unwrap();
    let mut sim = CmaBuilder::new(region, start)
        .start_time(600.0)
        .run(&field)
        .unwrap();
    // Debug builds run a shortened horizon; release runs the paper's.
    let horizon = if cfg!(debug_assertions) { 9 } else { 45 };
    for minute in 1..=horizon {
        sim.step().unwrap();
        if minute % 3 == 0 {
            let graph = UnitDiskGraph::new(sim.positions(), 10.0).unwrap();
            assert!(
                graph.is_connected(),
                "disconnected at minute {minute}: {} components",
                graph.component_count()
            );
        }
    }
    // Nobody escaped the region or teleported.
    assert!(sim.positions().iter().all(|p| region.contains(*p)));
    assert!(sim.nodes().iter().all(|n| n.traveled <= 45.0 + 1e-6));
}

#[test]
fn cma_does_not_degrade_the_initial_reconstruction_much() {
    let (field, region, grid) = scenario_setup();
    let start = scenario::grid_start_spaced(region, 100, 9.3).unwrap();
    let mut sim = CmaBuilder::new(region, start)
        .start_time(600.0)
        .run(&field)
        .unwrap();
    let mut timeline = DeltaTimeline::new();
    let e0 = timeline.record(&sim, &grid).unwrap();
    let horizon = if cfg!(debug_assertions) { 8 } else { 30 };
    for _ in 0..horizon {
        sim.step().unwrap();
    }
    let e1 = timeline.record(&sim, &grid).unwrap();
    // The Fig. 10 regime: δ should improve, and must never blow up.
    assert!(
        e1.delta < 1.15 * e0.delta,
        "delta degraded badly: {} -> {}",
        e0.delta,
        e1.delta
    );
    assert!(timeline.best_delta().unwrap() <= e0.delta);
}

#[test]
fn stationary_regime_is_detected_on_a_flat_field() {
    use cps::field::{PlaneField, Static};
    let region = Rect::square(100.0).unwrap();
    let field = Static::new(PlaneField::new(0.0, 0.0, 5.0));
    // 5×5 cell-centre grid: 20 m spacing keeps nodes out of each
    // other's communication range, so a flat field exerts no force.
    let start = scenario::grid_start(region, 25);
    let mut sim = CmaBuilder::new(region, start).run(field).unwrap();
    let mut detector = ConvergenceDetector::new(0.05, 3);
    let mut converged = false;
    for _ in 0..10 {
        let report = sim.step().unwrap();
        converged = detector.observe(report.time, report.max_displacement);
        if converged {
            break;
        }
    }
    assert!(converged, "flat field must converge almost immediately");
}

#[test]
fn evaluation_against_the_moving_truth_uses_the_right_instant() {
    let (field, region, grid) = scenario_setup();
    let start = scenario::grid_start_spaced(region, 36, 9.3).unwrap();
    let sim = CmaBuilder::new(region, start.clone())
        .start_time(600.0)
        .run(&field)
        .unwrap();
    let mut timeline = DeltaTimeline::new();
    let recorded = timeline.record(&sim, &grid).unwrap();
    // Recomputing by hand against the frozen field must agree.
    let frozen = field.at_time(600.0);
    let manual = DeltaEvaluator::new(&frozen, &grid, 10.0)
        .evaluate(&start)
        .unwrap();
    assert!((recorded.delta - manual.delta).abs() < 1e-9);
}
