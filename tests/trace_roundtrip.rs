//! Integration: the trace substrate round-trips through its
//! interchange formats and stays deterministic.

use cps::field::Field;
use cps::geometry::{Point2, Rect};
use cps::greenorbs::{Channel, Dataset, ForestConfig};

fn config() -> ForestConfig {
    ForestConfig {
        node_count: 200,
        hours: 14,
        ..ForestConfig::default()
    }
}

#[test]
fn csv_round_trip_preserves_the_extracted_surface() {
    let original = Dataset::generate(&config());

    // Export readings to CSV, re-import, rebuild the dataset.
    let mut csv = Vec::new();
    original.write_readings_csv(&mut csv).unwrap();
    let readings = Dataset::read_readings_csv(csv.as_slice()).unwrap();
    let rebuilt =
        Dataset::from_records(original.nodes().to_vec(), readings, original.side()).unwrap();

    let region = Rect::new(Point2::new(30.0, 30.0), Point2::new(110.0, 110.0)).unwrap();
    let a = original
        .region_field(region, Channel::Light, 10, 31)
        .unwrap();
    let b = rebuilt
        .region_field(region, Channel::Light, 10, 31)
        .unwrap();
    for (x, y) in a.values().iter().zip(b.values()) {
        assert!((x - y).abs() < 1e-4, "{x} vs {y}");
    }
}

#[test]
fn json_round_trip_is_lossless() {
    let original = Dataset::generate(&config());
    let json = original.to_json().unwrap();
    let back = Dataset::from_json(&json).unwrap();
    assert_eq!(back.node_count(), original.node_count());
    assert_eq!(back.hours(), original.hours());
    assert_eq!(back.readings(), original.readings());
}

#[test]
fn generation_is_reproducible_and_seed_sensitive() {
    let a = Dataset::generate(&config());
    let b = Dataset::generate(&config());
    assert_eq!(a.readings(), b.readings());

    let other = Dataset::generate(&ForestConfig {
        seed: 12345,
        ..config()
    });
    assert_ne!(a.readings(), other.readings());
}

#[test]
fn channels_are_physically_plausible_at_every_hour() {
    let dataset = Dataset::generate(&config());
    let region = Rect::new(Point2::new(30.0, 30.0), Point2::new(110.0, 110.0)).unwrap();
    for hour in [0u32, 6, 10, 12] {
        let light = dataset
            .region_field(region, Channel::Light, hour, 21)
            .unwrap();
        assert!(light.min_value() >= 0.0, "negative light at hour {hour}");
        let humidity = dataset
            .region_field(region, Channel::Humidity, hour, 21)
            .unwrap();
        assert!(humidity.min_value() >= 0.0 && humidity.max_value() <= 100.0);
        let temperature = dataset
            .region_field(region, Channel::Temperature, hour, 21)
            .unwrap();
        assert!(temperature.value(region.center()) > -20.0);
        assert!(temperature.value(region.center()) < 50.0);
    }
}
