//! Integration: graceful degradation under a fault schedule — the swarm
//! must detect partitions, heal them by relay re-planning, and keep
//! producing an honest δ all the way down to an empty fleet.

use cps::field::{GaussianBlob, GaussianMixtureField, PlaneField, Static};
use cps::prelude::*;

/// A chain of 7 nodes at exactly Rc spacing on a flat field: no
/// curvature, no repulsion (spacing 10 is outside the ~9.5 m
/// equilibrium), so without faults nobody ever moves. Killing the
/// middle node leaves a 20 m gap that only the recovery machinery can
/// close.
fn chain_start() -> Vec<Point2> {
    (0..7).map(|i| Point2::new(10.0 * i as f64, 50.0)).collect()
}

#[test]
fn killed_bridge_node_partitions_then_recovery_heals_the_chain() {
    let region = Rect::square(100.0).unwrap();
    let field = Static::new(PlaneField::new(0.0, 0.0, 3.0));
    let plan = FaultPlan::builder().seed(1).kill(3, 2).build().unwrap();
    let mut sim = CmaBuilder::new(region, chain_start())
        .faults(plan)
        .run(field)
        .unwrap();
    let mut tracker = SurvivabilityTracker::new(7);

    // Slots 0-1: nothing injected, nothing moves.
    for _ in 0..2 {
        let r = sim.step().unwrap();
        assert_eq!(r.moved, 0);
        assert_eq!(r.deaths, 0);
        assert_eq!(r.components, 1);
        tracker.observe_slot(sim.time(), sim.alive_count(), r.components, None);
    }

    // Slot 2: node 3 (x = 30) dies, splitting the chain into 0-2 and
    // 4-6 with a 20 m gap between the bridgeheads at x = 20 and x = 40.
    let r = sim.step().unwrap();
    assert_eq!(r.deaths, 1);
    assert_eq!(r.components, 2);
    assert!(sim.is_partitioned());
    tracker.observe_slot(sim.time(), sim.alive_count(), r.components, None);
    assert!(sim
        .fault_events()
        .iter()
        .any(|e| matches!(e, FaultEvent::Partition { components: 2, .. })));

    // Recovery: the bridgeheads march at each other 1 m/min, LCM drags
    // their chains along. The 20 m gap closes 2 m per slot, so the
    // graph must reconnect within ~6 more slots.
    let mut reconnected_at = None;
    for _ in 0..10 {
        let r = sim.step().unwrap();
        tracker.observe_slot(sim.time(), sim.alive_count(), r.components, None);
        if r.components == 1 {
            reconnected_at = Some(sim.time());
            break;
        }
        assert!(r.moved >= 2, "both shores must keep closing the gap");
    }
    assert!(
        reconnected_at.is_some(),
        "relay re-planning failed to heal the partition: events {:?}",
        sim.fault_events()
    );
    assert!(!sim.is_partitioned());
    assert!(sim
        .fault_events()
        .iter()
        .any(|e| matches!(e, FaultEvent::Reconnected { .. })));

    let report = tracker.finish();
    assert_eq!(report.initial_nodes, 7);
    assert_eq!(report.surviving_nodes, 6);
    assert_eq!(report.partitions, 1);
    assert_eq!(report.reconnects, 1);
    assert!(!report.unresolved_partition);
    assert_eq!(report.reconnect_times.len(), 1);
    assert!(
        report.reconnect_times[0] <= 8.0,
        "gap must close within 8 min"
    );
}

fn lumpy_field() -> Static<GaussianMixtureField> {
    Static::new(GaussianMixtureField::new(
        2.0,
        vec![
            GaussianBlob::isotropic(Point2::new(30.0, 60.0), 25.0, 6.0),
            GaussianBlob::isotropic(Point2::new(70.0, 30.0), 20.0, 5.0),
        ],
    ))
}

#[test]
fn swarm_completes_run_with_cull_and_lossy_links() {
    let region = Rect::square(100.0).unwrap();
    let grid = GridSpec::new(region, 41, 41).unwrap();
    let start = cps::sim::scenario::grid_start_spaced(region, 49, 9.3).unwrap();
    // The acceptance scenario: 10% of the fleet culled mid-run plus 20%
    // per-attempt message loss, still a complete, measurable run.
    let plan = FaultPlan::parse("seed=3,cull=0.1@10,loss=0.2:2").unwrap();
    let mut sim = CmaBuilder::new(region, start)
        .faults(plan)
        .run(lumpy_field())
        .unwrap();
    let mut timeline = DeltaTimeline::new();
    let mut tracker = SurvivabilityTracker::new(49);
    let e0 = timeline.record(&sim, &grid).unwrap();
    tracker.observe_slot(sim.time(), sim.alive_count(), 1, Some(e0.delta));
    let mut retried = 0usize;
    for slot in 1..=30 {
        let r = sim.step().unwrap();
        retried += r.retried;
        let delta = if slot % 5 == 0 {
            Some(timeline.record(&sim, &grid).unwrap().delta)
        } else {
            None
        };
        tracker.observe_slot(sim.time(), sim.alive_count(), r.components, delta);
        tracker.observe_messages(r.messages, r.retried, r.dropped);
    }
    assert_eq!(sim.alive_count(), 44, "cull of 10% of 49 = 5 victims");
    assert!(retried > 0, "20% loss must trigger retries over 30 slots");
    let report = tracker.finish();
    assert_eq!(report.surviving_nodes, 44);
    assert!((report.fraction_dead - 5.0 / 49.0).abs() < 1e-12);
    assert!(report.messages > 0 && report.retried > 0);
    assert!(report.baseline_delta.is_some() && report.final_delta.is_some());
    assert!(report.final_delta.unwrap().is_finite());
    let json = report.to_json();
    assert!(json.contains("\"surviving_nodes\":44"));
    // Five deaths were logged, and the timeline carries them too.
    let deaths = sim
        .fault_events()
        .iter()
        .filter(|e| matches!(e, FaultEvent::Death { .. }))
        .count();
    assert_eq!(deaths, 5);
    assert_eq!(timeline.events().len(), sim.fault_events().len());
}

#[test]
fn total_fleet_loss_degrades_delta_instead_of_erroring() {
    let region = Rect::square(100.0).unwrap();
    let grid = GridSpec::new(region, 41, 41).unwrap();
    let start = cps::sim::scenario::grid_start_spaced(region, 16, 9.3).unwrap();
    let plan = FaultPlan::builder().seed(2).cull(1.0, 3).build().unwrap();
    // A flat plane at z = 3 gives the live swarm a near-perfect
    // reconstruction (δ ≈ 0), so the empty-fleet constant-0 fallback
    // (δ = 3 · area) is unambiguously worse.
    let field = Static::new(PlaneField::new(0.0, 0.0, 3.0));
    let mut sim = CmaBuilder::new(region, start)
        .faults(plan)
        .run(field)
        .unwrap();
    let mut timeline = DeltaTimeline::new();
    let healthy = timeline.record(&sim, &grid).unwrap();
    for _ in 0..6 {
        sim.step().unwrap();
    }
    assert_eq!(sim.alive_count(), 0);
    // The survivor evaluation falls back to a constant surface: a large
    // but finite δ, not an error.
    let dead = timeline.record(&sim, &grid).unwrap();
    assert_eq!(dead.node_count, 0);
    assert!(dead.delta.is_finite());
    assert!(
        dead.delta > healthy.delta,
        "losing every node must cost δ: {} -> {}",
        healthy.delta,
        dead.delta
    );
}
