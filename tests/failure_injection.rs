//! Integration: node-failure injection during a CMA run — the swarm
//! must keep operating with the survivors.

use cps::field::{GaussianBlob, GaussianMixtureField, Static};
use cps::geometry::{GridSpec, Point2, Rect};
use cps::network::UnitDiskGraph;
use cps::sim::{scenario, CmaBuilder, DeltaTimeline};

fn field() -> Static<GaussianMixtureField> {
    Static::new(GaussianMixtureField::new(
        2.0,
        vec![
            GaussianBlob::isotropic(Point2::new(30.0, 60.0), 25.0, 6.0),
            GaussianBlob::isotropic(Point2::new(70.0, 30.0), 20.0, 5.0),
        ],
    ))
}

#[test]
fn swarm_survives_interior_failures() {
    let region = Rect::square(100.0).unwrap();
    let start = scenario::grid_start_spaced(region, 49, 9.3).unwrap();
    let mut sim = CmaBuilder::new(region, start).run(field()).unwrap();
    let grid = GridSpec::new(region, 41, 41).unwrap();
    let mut timeline = DeltaTimeline::new();

    for _ in 0..5 {
        sim.step().unwrap();
    }
    let before = timeline.record(&sim, &grid).unwrap();
    assert_eq!(sim.alive_count(), 49);

    // Kill five nodes spread across the lattice.
    for id in [8usize, 17, 24, 33, 40] {
        sim.fail_node(id).unwrap();
    }
    assert_eq!(sim.alive_count(), 44);
    assert_eq!(sim.positions().len(), 44);

    // The survivors keep stepping without panicking, stay in-region,
    // and the reconstruction remains usable (bounded degradation).
    for _ in 0..15 {
        sim.step().unwrap();
    }
    let after = timeline.record(&sim, &grid).unwrap();
    assert!(sim.positions().iter().all(|p| region.contains(*p)));
    assert!(
        after.delta < 3.0 * before.delta,
        "losing 10% of nodes should not triple delta: {} -> {}",
        before.delta,
        after.delta
    );
    // Dead nodes no longer move or accumulate travel.
    let dead = &sim.nodes()[8];
    assert!(!dead.alive);
    let traveled_at_death = dead.traveled;
    let position_at_death = dead.position;
    assert_eq!(sim.nodes()[8].traveled, traveled_at_death);
    assert_eq!(sim.nodes()[8].position, position_at_death);
}

#[test]
fn failure_api_validates_ids() {
    let region = Rect::square(50.0).unwrap();
    let start = scenario::grid_start_spaced(region, 9, 9.3).unwrap();
    let mut sim = CmaBuilder::new(region, start).run(field()).unwrap();
    assert!(sim.fail_node(99).is_err());
    sim.fail_node(4).unwrap();
    assert!(sim.fail_node(4).is_err(), "double failure must be rejected");
    assert_eq!(sim.alive_count(), 8);
}

#[test]
fn mass_failure_can_partition_but_never_panics() {
    // Killing a full column of the lattice may split the network — an
    // honest limitation of local-information repair (LCM cannot rejoin
    // parts it cannot hear). The simulation must stay sound regardless.
    let region = Rect::square(100.0).unwrap();
    let start = scenario::grid_start_spaced(region, 49, 9.3).unwrap();
    let mut sim = CmaBuilder::new(region, start).run(field()).unwrap();
    // Column 3 of the 7×7 grid.
    for row in 0..7 {
        sim.fail_node(row * 7 + 3).unwrap();
    }
    for _ in 0..10 {
        sim.step().unwrap();
    }
    assert_eq!(sim.alive_count(), 42);
    let graph = UnitDiskGraph::new(sim.positions(), 10.0).unwrap();
    // Either the survivors bridged the cut or they split — both are
    // legal outcomes; the invariant is operational soundness.
    assert!(graph.component_count() <= 2);
}
