//! Property tests for the unified `Optimizer` trait: the hybrid's two
//! degenerate configurations must collapse onto the pure algorithms
//! **bit-identically**, not approximately.
//!
//! * hybrid with zero CMA polish minutes ≡ pure FRA placement;
//! * hybrid with FRA refinement disabled ≡ pure CMA (grid start plus
//!   the same movement slots).
//!
//! The cases sweep fleet sizes, both quadrature kernels, and the tile
//! cache, since an equivalence that held only on one arithmetic path
//! would be no equivalence at all.

use cps::core::EvalOptions;
use cps::field::{Kernel, PeaksField, Static};
use cps::geometry::{Point2, Rect};
use cps::sim::{
    CmaOptimizer, EngineBuilder, FraOptimizer, HybridOptimizer, Optimizer, OptimizerKind,
};

fn region() -> Rect {
    Rect::new(Point2::new(20.0, 20.0), Point2::new(120.0, 120.0)).unwrap()
}

fn field() -> Static<PeaksField> {
    Static::new(PeaksField::new(region(), 8.0))
}

/// A small-but-varied case grid: fleet size × kernel × cache.
fn cases() -> Vec<(usize, Kernel, bool)> {
    let mut out = Vec::new();
    for &k in &[8usize, 13, 21] {
        for &kernel in &[Kernel::Walk, Kernel::Raster] {
            for &cached in &[false, true] {
                out.push((k, kernel, cached));
            }
        }
    }
    out
}

fn builder(k: usize, kernel: Kernel, cached: bool) -> EngineBuilder {
    EngineBuilder::new(region(), k)
        .evaluator(EvalOptions::new().kernel(kernel).cached(cached))
        .start_time(600.0)
        .grid_resolution(41)
}

fn position_bits(positions: &[Point2]) -> Vec<(u64, u64)> {
    positions
        .iter()
        .map(|p| (p.x.to_bits(), p.y.to_bits()))
        .collect()
}

#[test]
fn hybrid_with_zero_polish_is_bit_identical_to_pure_fra() {
    for (k, kernel, cached) in cases() {
        let base = builder(k, kernel, cached).minutes(0);
        let fra = FraOptimizer::new(base.clone()).run(field()).unwrap();
        let hybrid = HybridOptimizer::new(base).run(field()).unwrap();
        assert_eq!(fra.optimizer, "fra");
        assert_eq!(hybrid.optimizer, "hybrid");
        assert_eq!(hybrid.steps, 0, "zero polish minutes must step nothing");
        assert_eq!(
            (fra.refined, fra.relays),
            (hybrid.refined, hybrid.relays),
            "k={k} {kernel:?} cached={cached}: placement provenance diverged"
        );
        assert_eq!(
            position_bits(&fra.sim.positions()),
            position_bits(&hybrid.sim.positions()),
            "k={k} {kernel:?} cached={cached}: positions diverged"
        );
        assert_eq!(fra.sim.slot(), hybrid.sim.slot());
        assert_eq!(fra.sim.time().to_bits(), hybrid.sim.time().to_bits());
    }
}

#[test]
fn hybrid_without_refinement_is_bit_identical_to_pure_cma() {
    for (k, kernel, cached) in cases() {
        let base = builder(k, kernel, cached).minutes(3);
        let cma = CmaOptimizer::new(base.clone()).run(field()).unwrap();
        let hybrid = HybridOptimizer::new(base.fra_refinement(false))
            .run(field())
            .unwrap();
        assert_eq!(cma.optimizer, "cma");
        assert_eq!(hybrid.optimizer, "hybrid");
        assert_eq!((cma.refined, cma.relays), (0, 0));
        assert_eq!((hybrid.refined, hybrid.relays), (0, 0));
        assert_eq!(cma.steps, hybrid.steps);
        assert_eq!(
            position_bits(&cma.sim.positions()),
            position_bits(&hybrid.sim.positions()),
            "k={k} {kernel:?} cached={cached}: positions diverged"
        );
        assert_eq!(cma.sim.slot(), hybrid.sim.slot());
        assert_eq!(cma.sim.time().to_bits(), hybrid.sim.time().to_bits());
    }
}

#[test]
fn engine_builder_dispatches_the_selected_kind() {
    let base = builder(9, Kernel::Raster, false).minutes(1);
    let cma = base
        .clone()
        .optimizer(OptimizerKind::Cma)
        .run(field())
        .unwrap();
    let fra = base
        .clone()
        .optimizer(OptimizerKind::Fra)
        .run(field())
        .unwrap();
    let hybrid = base.optimizer(OptimizerKind::Hybrid).run(field()).unwrap();
    assert_eq!(cma.optimizer, "cma");
    assert_eq!(fra.optimizer, "fra");
    assert_eq!(hybrid.optimizer, "hybrid");
    // CMA moves for the mission; FRA holds position.
    assert_eq!(cma.steps, 1);
    assert_eq!(fra.steps, 0);
    assert_eq!(hybrid.steps, 1);
    // FRA-placed runs report their refinement provenance.
    assert!(fra.refined > 0 || fra.relays > 0);
}

#[test]
fn optimizer_kind_parses_the_cli_values() {
    assert_eq!("cma".parse::<OptimizerKind>().unwrap(), OptimizerKind::Cma);
    assert_eq!("fra".parse::<OptimizerKind>().unwrap(), OptimizerKind::Fra);
    assert_eq!(
        "hybrid".parse::<OptimizerKind>().unwrap(),
        OptimizerKind::Hybrid
    );
    assert!("annealing".parse::<OptimizerKind>().is_err());
}
