//! The reproduced headline claims of the paper, as executable
//! assertions (sizes are reduced in debug builds; run with `--release`
//! for the full experiment scale — see EXPERIMENTS.md for those
//! numbers).

use cps::core::osd::{baselines, FraBuilder};
use cps::core::DeltaEvaluator;
use cps::geometry::{GridSpec, Point2, Rect};
use cps::greenorbs::{Channel, Dataset, ForestConfig, LatentLightField};
use cps::sim::{scenario, CmaBuilder, DeltaTimeline};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trace() -> Dataset {
    Dataset::generate(&ForestConfig {
        node_count: if cfg!(debug_assertions) { 400 } else { 1000 },
        hours: 12,
        ..ForestConfig::default()
    })
}

fn region() -> Rect {
    Rect::new(Point2::new(20.0, 20.0), Point2::new(120.0, 120.0)).unwrap()
}

/// Fig. 7's core claim: at a healthy budget, the foresighted refinement
/// deployment reconstructs the environment far better than random
/// scattering, while also being connected (which random is not asked
/// to be).
#[test]
fn fra_beats_random_scattering_at_healthy_budgets() {
    let resolution = if cfg!(debug_assertions) { 51 } else { 101 };
    let k = 80;
    let dataset = trace();
    let reference = dataset
        .region_field(region(), Channel::Light, 10, resolution)
        .unwrap();
    let grid = GridSpec::new(region(), resolution, resolution).unwrap();
    let fra = FraBuilder::new(k, 10.0).grid(grid).run(&reference).unwrap();
    let mut evaluator = DeltaEvaluator::new(&reference, &grid, 10.0);
    let fe = evaluator.evaluate(&fra.positions).unwrap();
    assert!(fe.connected);

    let mut worse = 0;
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = baselines::random_deployment(region(), k, &mut rng);
        let re = evaluator.evaluate(&pts).unwrap();
        if fe.delta < re.delta {
            worse += 1;
        }
    }
    assert_eq!(worse, 3, "FRA must beat every random draw at k = {k}");
}

/// Figs. 8–10's core claims: from the connected grid start, CMA (i) never
/// disconnects the network and (ii) does not lose reconstruction
/// quality while adapting to the time-varying field.
#[test]
fn cma_stays_connected_and_does_not_regress() {
    let steps = if cfg!(debug_assertions) { 8 } else { 45 };
    let resolution = if cfg!(debug_assertions) { 41 } else { 101 };
    let field = LatentLightField::new(&ForestConfig::default());
    let grid = GridSpec::new(region(), resolution, resolution).unwrap();
    let start = scenario::grid_start_spaced(region(), 100, 9.3).unwrap();
    let mut sim = CmaBuilder::new(region(), start)
        .start_time(600.0)
        .run(&field)
        .unwrap();
    let mut timeline = DeltaTimeline::new();
    let e0 = timeline.record(&sim, &grid).unwrap();
    assert!(e0.connected, "the paper's initial grid must be connected");
    for _ in 0..steps {
        sim.step().unwrap();
    }
    let e1 = timeline.record(&sim, &grid).unwrap();
    assert!(e1.connected, "CMA+LCM must preserve connectivity");
    assert!(
        e1.delta <= 1.1 * e0.delta,
        "delta must not regress: {} -> {}",
        e0.delta,
        e1.delta
    );
}

/// Theorem 3.1: the δ definition via polytope volumes equals the
/// pointwise integral — checked on the actual trace surface.
#[test]
fn theorem_3_1_volume_identity_on_the_trace_surface() {
    use cps::field::{delta, PlaneField};
    let resolution = 41;
    let dataset = trace();
    let f = dataset
        .region_field(region(), Channel::Light, 10, resolution)
        .unwrap();
    let g = PlaneField::new(0.05, -0.02, 8.0);
    let grid = GridSpec::new(region(), resolution, resolution).unwrap();
    let u = delta::union_volume(&f, &g, &grid);
    let i = delta::intersection_volume(&f, &g, &grid);
    let d = delta::volume_difference(&f, &g, &grid);
    assert!((u - i - d).abs() < 1e-6 * d.max(1.0));
}
