//! NP-hardness companion (Theorem 4.1): OSD admits no efficient exact
//! algorithm, so FRA is a heuristic — on instances tiny enough to brute
//! force, its approximation quality can be measured directly.

use cps::core::osd::FraBuilder;
use cps::core::DeltaEvaluator;
use cps::field::{Field, GaussianBlob, GaussianMixtureField};
use cps::geometry::{GridSpec, Point2, Rect};

/// Brute-force optimum: δ over every way to choose `k` positions from
/// the candidate grid that yields a connected deployment.
fn brute_force_best(
    field: &(impl Field + Sync),
    candidates: &[Point2],
    k: usize,
    rc: f64,
    grid: &GridSpec,
) -> f64 {
    assert!(k == 3, "the exhaustive search is written for k = 3");
    let mut evaluator = DeltaEvaluator::new(field, grid, rc);
    let mut best = f64::INFINITY;
    let n = candidates.len();
    for a in 0..n {
        for b in a + 1..n {
            for c in b + 1..n {
                let pts = [candidates[a], candidates[b], candidates[c]];
                if let Ok(eval) = evaluator.evaluate(&pts) {
                    if eval.connected {
                        best = best.min(eval.delta);
                    }
                }
            }
        }
    }
    best
}

#[test]
fn fra_is_near_optimal_on_a_brute_forcible_instance() {
    // A 20×20 region with one off-centre bump; candidates on a 5×5
    // grid (25 choose 3 = 2300 subsets).
    let region = Rect::square(20.0).unwrap();
    let field = GaussianMixtureField::new(
        1.0,
        vec![GaussianBlob::isotropic(Point2::new(13.0, 7.0), 8.0, 3.0)],
    );
    let eval_grid_spec = GridSpec::new(region, 21, 21).unwrap();
    let candidate_grid = GridSpec::new(region, 5, 5).unwrap();
    let candidates: Vec<Point2> = candidate_grid.iter().map(|(_, _, p)| p).collect();

    let rc = 12.0;
    let optimal = brute_force_best(&field, &candidates, 3, rc, &eval_grid_spec);
    assert!(optimal.is_finite());

    // FRA on the same candidate grid.
    let fra = FraBuilder::new(3, rc)
        .grid(candidate_grid)
        .run(&field)
        .unwrap();
    let fra_eval = DeltaEvaluator::new(&field, &eval_grid_spec, rc)
        .evaluate(&fra.positions)
        .unwrap();
    assert!(fra_eval.connected);

    // The greedy heuristic will not always match the optimum, but on a
    // single-feature instance it must land within a small factor.
    assert!(
        fra_eval.delta <= 2.0 * optimal,
        "FRA {:.2} vs optimal {:.2}",
        fra_eval.delta,
        optimal
    );
}
