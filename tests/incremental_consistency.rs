//! Integration: the incremental δ engine against the full pipeline —
//! cached and uncached evaluation must agree within 1e-9 through
//! survivor subsets, fault-injected simulations, and every thread
//! count.

use cps::core::{DeltaEvaluator, EvalOptions};
use cps::field::{GaussianBlob, GaussianMixtureField, Parallelism, Static};
use cps::geometry::{GridSpec, Point2, Rect};
use cps::sim::{scenario, CmaBuilder, DeltaTimeline, FaultPlan};
use proptest::prelude::*;

const TOL: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= TOL * b.abs().max(1.0)
}

fn bumpy_field() -> GaussianMixtureField {
    GaussianMixtureField::new(
        2.0,
        vec![
            GaussianBlob::isotropic(Point2::new(30.0, 60.0), 15.0, 6.0),
            GaussianBlob::isotropic(Point2::new(70.0, 25.0), 12.0, -3.0),
            GaussianBlob::isotropic(Point2::new(55.0, 80.0), 18.0, 4.0),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Survivor subsets: for random alive-masks over a fixed fleet,
    /// the cached evaluator (whose tile cache carries state from one
    /// mask to the next) agrees with fresh full quadratures, at one,
    /// two, and eight threads.
    #[test]
    fn cached_survivor_evaluation_matches_uncached(
        masks in prop::collection::vec(
            prop::collection::vec(any::<bool>(), 36),
            2..5,
        ),
        threads in 1..9usize,
    ) {
        let region = Rect::square(100.0).unwrap();
        let grid = GridSpec::new(region, 41, 41).unwrap();
        let field = bumpy_field();
        let fleet = scenario::grid_start(region, 36);
        let par = Parallelism::fixed(threads);
        let mut cached = DeltaEvaluator::new(&field, &grid, 25.0)
            .options(EvalOptions::new().parallelism(par).cached(true))
            .survivors(true);
        for mask in masks {
            let mut uncached = DeltaEvaluator::new(&field, &grid, 25.0)
                .parallelism(par)
                .survivors(true)
                .survivor_mask(&mask);
            cached = cached.survivor_mask(&mask);
            let a = cached.evaluate(&fleet).unwrap();
            let b = uncached.evaluate(&fleet).unwrap();
            prop_assert!(
                close(a.delta, b.delta),
                "delta diverged: cached {} vs uncached {}",
                a.delta,
                b.delta
            );
            prop_assert!(close(a.rms, b.rms));
            prop_assert_eq!(a.connected, b.connected);
            prop_assert_eq!(a.node_count, b.node_count);
        }
    }
}

/// Fault-injected simulation: two identical CMA runs — one recording
/// its δ timeline through the tile cache, one through full recompute —
/// must agree at every sampled slot even as nodes die and the fleet
/// shrinks.
#[test]
fn cached_timeline_matches_uncached_under_faults() {
    let region = Rect::square(100.0).unwrap();
    let grid = GridSpec::new(region, 41, 41).unwrap();
    let field = Static::new(bumpy_field());
    let plan = FaultPlan::builder()
        .seed(42)
        .kill(3, 2)
        .kill(11, 4)
        .cull(0.1, 6)
        .link_loss(0.2, 1)
        .build()
        .unwrap();
    let start = scenario::grid_start_spaced(region, 49, 9.3).unwrap();

    let mut deltas: Vec<Vec<f64>> = Vec::new();
    for threads in [1usize, 2, 8] {
        let par = Parallelism::fixed(threads);
        let run = |cached: bool| -> Vec<f64> {
            let opts = EvalOptions::new().parallelism(par).cached(cached);
            let mut sim = CmaBuilder::new(region, start.clone())
                .evaluator(opts)
                .faults(plan.clone())
                .run(&field)
                .unwrap();
            let mut timeline = DeltaTimeline::for_simulation(&sim);
            let mut out = vec![timeline.record(&sim, &grid).unwrap().delta];
            for _ in 0..8 {
                sim.step().unwrap();
                out.push(timeline.record(&sim, &grid).unwrap().delta);
            }
            out
        };
        let cached = run(true);
        let uncached = run(false);
        for (slot, (c, u)) in cached.iter().zip(&uncached).enumerate() {
            assert!(
                close(*c, *u),
                "threads {threads} slot {slot}: cached {c} vs uncached {u}"
            );
        }
        deltas.push(uncached);
    }
    // The fault schedule is deterministic, so thread count must not
    // change what happened either.
    for bits in &deltas[1..] {
        for (slot, (a, b)) in deltas[0].iter().zip(bits).enumerate() {
            assert!(close(*a, *b), "slot {slot}: {a} vs {b} across threads");
        }
    }
}
