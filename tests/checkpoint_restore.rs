//! Integration: checkpoint/restore across the full stack — a resumed
//! run must be bit-identical to an uninterrupted one at every thread
//! count, with the tile cache on or off, even when the checkpoint
//! lands in the middle of a fault plan; corrupted snapshots must fail
//! with typed errors and fall back to the newest valid one.

use std::fs;
use std::path::PathBuf;

use cps::core::{CoreError, EvalOptions, SurvivabilityTracker};
use cps::field::{Parallelism, PeaksField, Static};
use cps::geometry::{GridSpec, Rect};
use cps::sim::{scenario, CheckpointDir, CmaBuilder, DeltaTimeline, FaultPlan, SimSnapshot};
use proptest::prelude::*;

fn region() -> Rect {
    Rect::square(100.0).unwrap()
}

fn field() -> Static<PeaksField> {
    Static::new(PeaksField::new(region(), 8.0))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cps_ckpt_it_{}_{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// One slot of the shared measurement schedule: δ every third slot,
/// survivability every slot. Run identically on both sides of a
/// checkpoint so the recorded series can be compared bit-for-bit.
fn measure(
    sim: &mut cps::sim::Simulation<Static<PeaksField>>,
    grid: &GridSpec,
    timeline: &mut DeltaTimeline,
    survivability: &mut SurvivabilityTracker,
) {
    let report = sim.step().unwrap();
    survivability.observe_messages(report.messages, report.retried, report.dropped);
    let sampled = if sim.slot().is_multiple_of(3) {
        Some(timeline.record(sim, grid).unwrap().delta)
    } else {
        None
    };
    survivability.observe_slot(sim.time(), sim.alive_count(), report.components, sampled);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole property: for random fault plans, checkpoint
    /// slots, thread counts, and cache settings, resuming from a
    /// byte-round-tripped snapshot reproduces the uninterrupted run
    /// (under the same evaluation options) exactly: node state to the
    /// bit, fault events, δ samples, and the survivability ledger.
    #[test]
    fn resume_is_bit_identical_mid_fault_plan(
        seed in any::<u64>(),
        kill_node in 0..25usize,
        kill_slot in 4..10u64,
        checkpoint_slot in 3..9u64,
        threads_idx in 0..3usize,
        cached in any::<bool>(),
    ) {
        let par = Parallelism::fixed([1usize, 2, 8][threads_idx]);
        let opts = EvalOptions::new().parallelism(par).cached(cached);
        let grid = GridSpec::new(region(), 21, 21).unwrap();
        let start = scenario::grid_start(region(), 25);
        let plan = FaultPlan::parse(&format!(
            "seed={seed},kill={kill_node}@{kill_slot},death=0.003,loss=0.1:2,stuck=0.02:3"
        ))
        .unwrap();
        let total_slots = 14u64;

        // Uninterrupted reference run.
        let mut reference = CmaBuilder::new(region(), start.clone())
            .start_time(600.0)
            .faults(plan.clone())
            .parallelism(par)
            .evaluator(opts)
            .run(field())
            .unwrap();
        let mut ref_timeline = DeltaTimeline::with_options(opts);
        let mut ref_surv = SurvivabilityTracker::new(25);
        for _ in 0..total_slots {
            measure(&mut reference, &grid, &mut ref_timeline, &mut ref_surv);
        }

        // Interrupted run: identical until `checkpoint_slot`, then the
        // snapshot round-trips through bytes (a simulated crash) and a
        // fresh process resumes.
        let mut interrupted = CmaBuilder::new(region(), start)
            .start_time(600.0)
            .faults(plan)
            .parallelism(par)
            .evaluator(opts)
            .run(field())
            .unwrap();
        let mut timeline = DeltaTimeline::with_options(opts);
        let mut surv = SurvivabilityTracker::new(25);
        for _ in 0..checkpoint_slot {
            measure(&mut interrupted, &grid, &mut timeline, &mut surv);
        }
        let mut snap = interrupted.checkpoint();
        snap.attach_timeline(&timeline);
        snap.attach_survivability(&surv);
        let bytes = snap.to_bytes().unwrap();
        drop((interrupted, timeline, surv));

        let snap = SimSnapshot::from_bytes(&bytes).unwrap();
        let mut timeline = snap.timeline(opts).unwrap();
        let mut surv = snap.survivability_tracker().unwrap();
        let mut resumed = CmaBuilder::resume_from(snap)
            .parallelism(par)
            .evaluator(opts)
            .run(field())
            .unwrap();
        prop_assert_eq!(resumed.slot(), checkpoint_slot);
        for _ in checkpoint_slot..total_slots {
            measure(&mut resumed, &grid, &mut timeline, &mut surv);
        }

        prop_assert_eq!(reference.nodes(), resumed.nodes());
        prop_assert_eq!(reference.fault_events(), resumed.fault_events());
        for (a, b) in reference.nodes().iter().zip(resumed.nodes()) {
            prop_assert_eq!(a.position.x.to_bits(), b.position.x.to_bits());
            prop_assert_eq!(a.position.y.to_bits(), b.position.y.to_bits());
            prop_assert_eq!(a.curvature.to_bits(), b.curvature.to_bits());
        }
        prop_assert_eq!(ref_timeline.len(), timeline.len());
        for ((ta, ea), (tb, eb)) in ref_timeline.samples().iter().zip(timeline.samples()) {
            prop_assert_eq!(ta.to_bits(), tb.to_bits());
            prop_assert_eq!(ea.delta.to_bits(), eb.delta.to_bits());
        }
        prop_assert_eq!(ref_surv.state(), surv.state());
    }
}

#[test]
fn single_byte_corruption_is_a_checksum_error() {
    let start = scenario::grid_start(region(), 9);
    let mut sim = CmaBuilder::new(region(), start).run(field()).unwrap();
    for _ in 0..3 {
        sim.step().unwrap();
    }
    let dir = scratch("corrupt");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snap.cpsnap");
    sim.checkpoint().save(&path).unwrap();

    let clean = fs::read(&path).unwrap();
    // Flip a byte in the middle of the payload.
    let mut bad = clean.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x01;
    fs::write(&path, &bad).unwrap();
    match SimSnapshot::load(&path) {
        Err(CoreError::SnapshotCorrupt { .. }) => {}
        other => panic!("expected SnapshotCorrupt, got {other:?}"),
    }

    // The pristine bytes still load.
    fs::write(&path, &clean).unwrap();
    let snap = SimSnapshot::load(&path).unwrap();
    assert_eq!(snap.slot, 3);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn damaged_snapshots_fall_back_to_previous_valid() {
    let start = scenario::grid_start(region(), 9);
    let mut sim = CmaBuilder::new(region(), start).run(field()).unwrap();
    let dir = scratch("fallback");
    let store = CheckpointDir::new(&dir);

    sim.step().unwrap();
    let good_path = store.store(&sim.checkpoint()).unwrap();
    sim.step().unwrap();
    let newer_path = store.store(&sim.checkpoint()).unwrap();

    // Truncate the newest snapshot and drop in an empty decoy that
    // sorts even newer: both are skipped for the older valid one.
    let newer_bytes = fs::read(&newer_path).unwrap();
    fs::write(&newer_path, &newer_bytes[..newer_bytes.len() / 2]).unwrap();
    fs::write(dir.join("snap-999999999999.cpsnap"), b"").unwrap();

    let (snap, path) = store
        .latest_valid()
        .unwrap()
        .expect("older snapshot survives");
    assert_eq!(path, good_path);
    assert_eq!(snap.slot, 1);

    // With every snapshot damaged there is nothing to resume from —
    // reported as absence, not an error, so callers can start fresh.
    let good_bytes = fs::read(&good_path).unwrap();
    fs::write(&good_path, &good_bytes[..10]).unwrap();
    assert!(store.latest_valid().unwrap().is_none());
    let _ = fs::remove_dir_all(&dir);
}
