//! Integration: the full OSD pipeline — trace → reference surface →
//! FRA plan → reconstruction → δ — spanning every crate.

use cps::core::osd::{baselines, FraBuilder};
use cps::core::DeltaEvaluator;
use cps::geometry::{GridSpec, Point2, Rect};
use cps::greenorbs::{Channel, Dataset, ForestConfig};
use cps::network::UnitDiskGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario() -> (Dataset, Rect, GridSpec) {
    let dataset = Dataset::generate(&ForestConfig {
        node_count: 600,
        hours: 12,
        ..ForestConfig::default()
    });
    let region = Rect::new(Point2::new(20.0, 20.0), Point2::new(120.0, 120.0)).unwrap();
    let grid = GridSpec::new(region, 51, 51).unwrap();
    (dataset, region, grid)
}

#[test]
fn fra_plan_is_feasible_and_beats_random_at_mid_budget() {
    let (dataset, region, grid) = scenario();
    let reference = dataset
        .region_field(region, Channel::Light, 10, 51)
        .unwrap();

    let k = 80;
    let plan = FraBuilder::new(k, 10.0).grid(grid).run(&reference).unwrap();
    assert_eq!(plan.positions.len(), k);
    assert_eq!(plan.refined + plan.relays, k);

    let mut evaluator = DeltaEvaluator::new(&reference, &grid, 10.0);
    let eval = evaluator.evaluate(&plan.positions).unwrap();
    assert!(
        eval.connected,
        "FRA must satisfy the connectivity constraint"
    );
    assert!(eval.delta.is_finite() && eval.delta > 0.0);

    // Fig. 7's headline: at a healthy mid-range budget FRA beats the
    // random baseline decisively.
    let mut deltas = Vec::new();
    for seed in 0..3 {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = baselines::random_deployment(region, k, &mut rng);
        deltas.push(evaluator.evaluate(&pts).unwrap().delta);
    }
    let random_mean = deltas.iter().sum::<f64>() / deltas.len() as f64;
    assert!(
        eval.delta < random_mean,
        "FRA {} should beat random {}",
        eval.delta,
        random_mean
    );
}

#[test]
fn more_budget_means_no_worse_reconstruction() {
    let (dataset, region, grid) = scenario();
    let reference = dataset
        .region_field(region, Channel::Light, 10, 51)
        .unwrap();
    let small = FraBuilder::new(40, 10.0)
        .grid(grid)
        .run(&reference)
        .unwrap();
    let large = FraBuilder::new(120, 10.0)
        .grid(grid)
        .run(&reference)
        .unwrap();
    let mut evaluator = DeltaEvaluator::new(&reference, &grid, 10.0);
    let es = evaluator.evaluate(&small.positions).unwrap();
    let el = evaluator.evaluate(&large.positions).unwrap();
    assert!(
        el.delta < es.delta,
        "tripling the budget should reduce delta ({} vs {})",
        el.delta,
        es.delta
    );
}

#[test]
fn fra_networks_are_connected_across_budgets_and_radii() {
    let (dataset, region, grid) = scenario();
    let reference = dataset
        .region_field(region, Channel::Light, 10, 51)
        .unwrap();
    for k in [5usize, 25, 60] {
        for rc in [8.0, 12.0, 25.0] {
            let plan = FraBuilder::new(k, rc).grid(grid).run(&reference).unwrap();
            let graph = UnitDiskGraph::new(plan.positions.clone(), rc).unwrap();
            assert!(
                graph.is_connected(),
                "k={k} rc={rc}: {} components",
                graph.component_count()
            );
            assert!(plan.positions.iter().all(|p| region.contains(*p)));
        }
    }
}
