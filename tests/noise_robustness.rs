//! Integration: the full pipeline on terrain nobody designed — seeded
//! noise fields across many seeds.

use cps::core::osd::FraBuilder;
use cps::core::{analyze_deployment, DeltaEvaluator};
use cps::field::NoiseField;
use cps::geometry::{GridSpec, Rect};
use cps::network::UnitDiskGraph;

#[test]
fn fra_is_robust_across_noise_seeds() {
    let region = Rect::square(80.0).unwrap();
    let grid = GridSpec::new(region, 41, 41).unwrap();
    for seed in 0..8 {
        let field = NoiseField::new(seed, 18.0, 12.0);
        let plan = FraBuilder::new(30, 12.0)
            .grid(grid)
            .run(&field)
            .unwrap_or_else(|e| panic!("seed {seed}: FRA failed: {e}"));
        assert_eq!(plan.positions.len(), 30);
        let graph = UnitDiskGraph::new(plan.positions.clone(), 12.0).unwrap();
        assert!(graph.is_connected(), "seed {seed}: disconnected");
        let eval = DeltaEvaluator::new(&field, &grid, 12.0)
            .evaluate(&plan.positions)
            .unwrap();
        assert!(eval.delta.is_finite() && eval.delta >= 0.0);
    }
}

#[test]
fn deployment_reports_stay_sound_on_noise() {
    let region = Rect::square(80.0).unwrap();
    let grid = GridSpec::new(region, 41, 41).unwrap();
    let field = NoiseField::new(3, 14.0, 10.0);
    let plan = FraBuilder::new(40, 10.0).grid(grid).run(&field).unwrap();
    let report = analyze_deployment(&field, &plan.positions, 10.0, &grid).unwrap();
    assert!(report.evaluation.connected);
    // Coverage cells tile the region.
    let total_coverage = report.coverage.mean * report.coverage.count as f64;
    assert!((total_coverage - region.area()).abs() < 1.0);
    // Diameter can't exceed the k-hop worst case.
    assert!(report.network_diameter.unwrap() <= 40.0 * 10.0);
}

#[test]
fn cma_swarm_handles_noise_terrain() {
    use cps::field::Static;
    use cps::sim::{scenario, CmaBuilder};
    let region = Rect::square(80.0).unwrap();
    let field = Static::new(NoiseField::new(11, 16.0, 20.0));
    let start = scenario::grid_start_spaced(region, 49, 9.3).unwrap();
    let mut sim = CmaBuilder::new(region, start).run(field).unwrap();
    for _ in 0..20 {
        sim.step().unwrap();
    }
    assert!(sim.positions().iter().all(|p| region.contains(*p)));
    let graph = UnitDiskGraph::new(sim.positions(), 10.0).unwrap();
    assert!(graph.is_connected());
}
