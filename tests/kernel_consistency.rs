//! Integration: the walk and raster δ-quadrature kernels must be
//! interchangeable — identical FRA and CMA deployments, and δ/RMS
//! agreement within 1e-9 at every thread count, cache on or off,
//! survivor masks included. This is what the CI `kernel-consistency`
//! job runs.

use cps::core::osd::FraBuilder;
use cps::core::{DeltaEvaluator, EvalOptions, Kernel};
use cps::field::{Parallelism, PeaksField};
use cps::geometry::{GridSpec, Point2, Rect};
use cps::greenorbs::{ForestConfig, LatentLightField};
use cps::sim::{scenario, CmaBuilder, DeltaTimeline};

fn region() -> Rect {
    Rect::square(100.0).unwrap()
}

fn grid() -> GridSpec {
    GridSpec::new(region(), 51, 51).unwrap()
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * b.abs().max(1.0)
}

/// The load-bearing guarantee for the raster default: FRA's greedy
/// refinement — argmax choices, relay placement, everything — picks the
/// *same* deployment under both kernels, at every thread count.
#[test]
fn fra_deployments_are_identical_across_kernels() {
    let f = PeaksField::new(region(), 8.0);
    let walk = FraBuilder::new(30, 10.0)
        .grid(grid())
        .evaluator(EvalOptions::new().kernel(Kernel::Walk))
        .track_delta(true)
        .run(&f)
        .unwrap();
    for threads in [1usize, 2, 8] {
        let raster = FraBuilder::new(30, 10.0)
            .grid(grid())
            .evaluator(
                EvalOptions::new()
                    .kernel(Kernel::Raster)
                    .parallelism(Parallelism::fixed(threads)),
            )
            .track_delta(true)
            .run(&f)
            .unwrap();
        assert_eq!(
            walk.positions, raster.positions,
            "kernels diverged at {threads} threads"
        );
        assert_eq!(walk.refined, raster.refined);
        assert_eq!(walk.relays, raster.relays);
        let a = walk.delta_trajectory.as_deref().unwrap();
        let b = raster.delta_trajectory.as_deref().unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(close(*x, *y), "trajectory walk {x} vs raster {y}");
        }
    }
}

/// DeltaEvaluator: walk and raster agree within 1e-9 on a full
/// deployment, at 1/2/8 threads, with the tile cache on and off.
#[test]
fn evaluator_kernels_agree_at_any_thread_count_and_cache_setting() {
    let f = PeaksField::new(region(), 8.0);
    let g = grid();
    let plan = FraBuilder::new(40, 30.0).grid(g).run(&f).unwrap();
    let baseline = DeltaEvaluator::new(&f, &g, 30.0)
        .kernel(Kernel::Walk)
        .evaluate(&plan.positions)
        .unwrap();
    for threads in [1usize, 2, 8] {
        for cached in [false, true] {
            for kernel in [Kernel::Walk, Kernel::Raster] {
                let e = DeltaEvaluator::new(&f, &g, 30.0)
                    .parallelism(Parallelism::fixed(threads))
                    .cached(cached)
                    .kernel(kernel)
                    .evaluate(&plan.positions)
                    .unwrap();
                assert!(
                    close(e.delta, baseline.delta),
                    "delta {kernel:?} threads={threads} cached={cached}: {} vs {}",
                    e.delta,
                    baseline.delta
                );
                assert!(
                    close(e.rms, baseline.rms),
                    "rms {kernel:?} threads={threads} cached={cached}: {} vs {}",
                    e.rms,
                    baseline.rms
                );
                assert_eq!(e.connected, baseline.connected);
            }
        }
    }
}

/// Survivor-mask evaluation: attrition down to a sub-hull survivor set
/// agrees across kernels, and the degenerate constant-fallback regime
/// (fewer than three survivors) is bit-identical — it never touches
/// the kernel-dependent path.
#[test]
fn survivor_mask_evaluation_agrees_across_kernels() {
    let f = PeaksField::new(region(), 8.0);
    let g = grid();
    let plan = FraBuilder::new(30, 30.0).grid(g).run(&f).unwrap();
    // Kill every third node.
    let mask: Vec<bool> = (0..plan.positions.len()).map(|i| i % 3 != 0).collect();
    let walk = DeltaEvaluator::new(&f, &g, 30.0)
        .survivor_mask(&mask)
        .kernel(Kernel::Walk)
        .evaluate(&plan.positions)
        .unwrap();
    for threads in [1usize, 2, 8] {
        let raster = DeltaEvaluator::new(&f, &g, 30.0)
            .survivor_mask(&mask)
            .kernel(Kernel::Raster)
            .parallelism(Parallelism::fixed(threads))
            .evaluate(&plan.positions)
            .unwrap();
        assert!(
            close(raster.delta, walk.delta),
            "masked delta at {threads} threads: raster {} walk {}",
            raster.delta,
            walk.delta
        );
        assert!(close(raster.rms, walk.rms));
    }
    // Two survivors: both kernels collapse to the same constant plane.
    let mut two = vec![false; plan.positions.len()];
    two[0] = true;
    two[1] = true;
    let a = DeltaEvaluator::new(&f, &g, 30.0)
        .survivor_mask(&two)
        .kernel(Kernel::Walk)
        .evaluate(&plan.positions)
        .unwrap();
    let b = DeltaEvaluator::new(&f, &g, 30.0)
        .survivor_mask(&two)
        .kernel(Kernel::Raster)
        .evaluate(&plan.positions)
        .unwrap();
    assert_eq!(a.delta.to_bits(), b.delta.to_bits());
    assert_eq!(a.rms.to_bits(), b.rms.to_bits());
}

/// CMA: node movement never reads δ, so a swarm stepped under either
/// kernel traces the exact same trajectories; the recorded δ timeline
/// agrees within 1e-9.
#[test]
fn cma_trajectories_are_identical_across_kernels() {
    let field = LatentLightField::new(&ForestConfig::default());
    let region = Rect::new(Point2::new(20.0, 20.0), Point2::new(120.0, 120.0)).unwrap();
    let grid = GridSpec::new(region, 51, 51).unwrap();
    let horizon = if cfg!(debug_assertions) { 6 } else { 20 };
    let mut runs = Vec::new();
    for kernel in [Kernel::Walk, Kernel::Raster] {
        let start = scenario::grid_start_spaced(region, 60, 9.3).unwrap();
        let mut sim = CmaBuilder::new(region, start)
            .evaluator(EvalOptions::new().kernel(kernel))
            .start_time(600.0)
            .run(&field)
            .unwrap();
        let mut timeline = DeltaTimeline::for_simulation(&sim);
        timeline.record(&sim, &grid).unwrap();
        for _ in 0..horizon {
            sim.step().unwrap();
        }
        timeline.record(&sim, &grid).unwrap();
        let deltas: Vec<f64> = timeline.samples().iter().map(|(_, e)| e.delta).collect();
        runs.push((sim.positions(), deltas));
    }
    let (walk_pos, walk_deltas) = &runs[0];
    let (raster_pos, raster_deltas) = &runs[1];
    assert_eq!(walk_pos, raster_pos, "CMA trajectories diverged");
    for (a, b) in walk_deltas.iter().zip(raster_deltas) {
        assert!(close(*a, *b), "timeline walk {a} vs raster {b}");
    }
}
