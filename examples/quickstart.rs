//! Quickstart: place a small stationary CPS deployment on a known
//! surface and inspect the reconstruction it achieves.
//!
//! Run with: `cargo run --release --example quickstart`

use cps::field::PeaksField;
use cps::prelude::*;
use cps::viz::{ascii_heatmap, ascii_scatter};

fn main() -> Result<(), cps::Error> {
    // The environment: Matlab's classic `peaks` surface over a
    // 100 x 100 m region (the paper's Fig. 3 benchmark).
    let region = Rect::square(100.0)?;
    let reference = PeaksField::new(region, 8.0);
    let grid = GridSpec::new(region, 101, 101)?;

    println!("the real environment:");
    println!("{}", ascii_heatmap(&reference, &grid, 60, 22)?);

    // Place 25 nodes with communication radius 30 m using the paper's
    // foresighted refinement algorithm: sample where the current
    // reconstruction errs most, while keeping the network connectable.
    let k = 25;
    let result = FraBuilder::new(k, 30.0).grid(grid).run(&reference)?;
    println!(
        "FRA placed {} nodes ({} by refinement, {} connectivity relays):",
        result.positions.len(),
        result.refined,
        result.relays
    );
    println!("{}", ascii_scatter(&result.positions, region, 60, 22)?);

    // Rebuild the surface from the node samples and compare.
    let samples: Vec<f64> = result
        .positions
        .iter()
        .map(|&p| reference.value(p))
        .collect();
    let rebuilt = ReconstructedSurface::from_samples(region, &result.positions, &samples)?;
    println!("what the deployment sees (Delaunay reconstruction):");
    println!("{}", ascii_heatmap(&rebuilt, &grid, 60, 22)?);

    let eval = DeltaEvaluator::new(&reference, &grid, 30.0).evaluate(&result.positions)?;
    println!(
        "delta = {:.1} (volume difference, Eqn. 2)   rms = {:.2}   connected = {}",
        eval.delta, eval.rms, eval.connected
    );
    Ok(())
}
