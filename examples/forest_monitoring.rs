//! Forest monitoring: plan a stationary deployment from a historical
//! sensing trace — the paper's OSD workflow end to end.
//!
//! A GreenOrbs-style forest trace provides the historical reference
//! surface; FRA plans where `k` long-lived nodes should be installed so
//! that future light maps rebuilt from their readings track reality,
//! and the plan is validated against a *later* hour of the trace.
//!
//! Run with: `cargo run --release --example forest_monitoring`

use cps::core::osd::baselines;
use cps::greenorbs::{Channel, Dataset, ForestConfig};
use cps::prelude::*;
use cps::viz::{ascii_heatmap, ascii_scatter, topology_summary};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), cps::Error> {
    // Load (here: synthesize) the sensing trace and pick the region of
    // interest — a 100 x 100 m patch of the forest.
    let dataset = Dataset::generate(&ForestConfig::default());
    let region = Rect::new(Point2::new(20.0, 20.0), Point2::new(120.0, 120.0))?;
    let grid = GridSpec::new(region, 101, 101)?;
    println!(
        "trace: {} nodes, {} hourly rounds over a {:.0} m plot",
        dataset.node_count(),
        dataset.hours(),
        dataset.side()
    );

    // Historical reference: the light surface at 10:00.
    let reference = dataset.region_field(region, Channel::Light, 10, 101)?;
    println!("\nhistorical light surface (10:00):");
    println!("{}", ascii_heatmap(&reference, &grid, 60, 22)?);

    // Plan 80 stationary nodes with the paper's parameters (Rc = 10 m).
    let k = 80;
    let plan = FraBuilder::new(k, 10.0).grid(grid).run(&reference)?;
    println!(
        "FRA deployment plan — {}",
        topology_summary(&plan.positions)
    );
    println!("{}", ascii_scatter(&plan.positions, region, 60, 22)?);

    // Validate on the planning hour and on a later hour (11:00): the
    // spatial structure persists, so the plan keeps working.
    for hour in [10u32, 11] {
        let truth = dataset.region_field(region, Channel::Light, hour, 101)?;
        let mut evaluator = DeltaEvaluator::new(&truth, &grid, 10.0);
        let planned = evaluator.evaluate(&plan.positions)?;
        let mut rng = StdRng::seed_from_u64(1);
        let random = baselines::random_deployment(region, k, &mut rng);
        let rand_eval = evaluator.evaluate(&random)?;
        println!(
            "{hour}:00  FRA delta = {:>9.1} (connected: {})   random delta = {:>9.1}",
            planned.delta, planned.connected, rand_eval.delta
        );
    }
    Ok(())
}
