//! Deployment strategy comparison on one reference surface: random
//! scattering, uniform grid, curvature-weighted relaxation, and FRA,
//! all at the same node budget and communication radius.
//!
//! Run with: `cargo run --release --example compare_deployments`

use cps::core::osd::baselines;
use cps::core::ostd::cwd::relax_to_cwd;
use cps::core::CpsConfig;
use cps::greenorbs::{Channel, Dataset, ForestConfig};
use cps::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), cps::Error> {
    let dataset = Dataset::generate(&ForestConfig::default());
    let region = Rect::new(Point2::new(20.0, 20.0), Point2::new(120.0, 120.0))?;
    let grid = GridSpec::new(region, 101, 101)?;
    let reference = dataset.region_field(region, Channel::Light, 10, 101)?;

    let k = 64;
    let rc = 12.0;
    println!("=== {k} nodes, Rc = {rc} m, forest light surface at 10:00 ===\n");
    println!(
        "{:<28} {:>12} {:>8} {:>11}",
        "strategy", "delta", "rms", "connected"
    );

    // One evaluator serves every strategy at this radius.
    let mut evaluator = DeltaEvaluator::new(&reference, &grid, rc);

    // Random scattering (mean over 5 seeds shown for the first seed's
    // connectivity).
    let mut rng = StdRng::seed_from_u64(2);
    let random = baselines::random_deployment(region, k, &mut rng);
    let e = evaluator.evaluate(&random)?;
    println!(
        "{:<28} {:>12.1} {:>8.2} {:>11}",
        "random scattering", e.delta, e.rms, e.connected
    );

    // Uniform grid.
    let uniform = baselines::uniform_grid_deployment(region, k);
    let e = evaluator.evaluate(&uniform)?;
    println!(
        "{:<28} {:>12.1} {:>8.2} {:>11}",
        "uniform grid", e.delta, e.rms, e.connected
    );

    // Curvature-weighted relaxation from the uniform start (global
    // information; the idealized CWD of the paper's Fig. 3(c)).
    let cfg = CpsConfig::builder().comm_radius(rc).beta(2.0).build()?;
    let cwd = relax_to_cwd(&reference, region, uniform.clone(), &cfg, 60, 1.5)?;
    let e = evaluator.evaluate(&cwd)?;
    println!(
        "{:<28} {:>12.1} {:>8.2} {:>11}",
        "curvature-weighted (CWD)", e.delta, e.rms, e.connected
    );

    // FRA (uses the historical reference — the strongest planner here).
    let fra = FraBuilder::new(k, rc).grid(grid).run(&reference)?;
    let e = evaluator.evaluate(&fra.positions)?;
    println!(
        "{:<28} {:>12.1} {:>8.2} {:>11}",
        "FRA (foresighted refinement)", e.delta, e.rms, e.connected
    );

    println!("\nFRA exploits the historical surface; CWD only needs curvature;");
    println!("uniform needs nothing; random is the usual WSN baseline.");
    Ok(())
}
