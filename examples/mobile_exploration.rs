//! Mobile exploration: a swarm of CPS robots maps an unknown,
//! time-varying environment — the paper's OSTD workflow end to end.
//!
//! 64 mobile nodes start on a connected grid with no knowledge of the
//! field. Each minute every node senses within `Rs`, exchanges
//! position + curvature with single-hop neighbors, and takes one CMA
//! step; the local connectivity mechanism keeps the network whole.
//!
//! Run with: `cargo run --release --example mobile_exploration`

use cps::field::{DriftingField, GaussianBlob, GaussianMixtureField};
use cps::linalg::Vec2;
use cps::network::UnitDiskGraph;
use cps::prelude::*;
use cps::viz::ascii_scatter;

fn main() -> Result<(), cps::Error> {
    let region = Rect::square(100.0)?;
    let grid = GridSpec::new(region, 101, 101)?;

    // The unknown environment: hotspot clusters over a flat floor,
    // drifting slowly east.
    let hotspots = GaussianMixtureField::new(
        2.0,
        vec![
            GaussianBlob::isotropic(Point2::new(25.0, 70.0), 30.0, 6.0),
            GaussianBlob::isotropic(Point2::new(30.0, 62.0), 22.0, 5.0),
            GaussianBlob::isotropic(Point2::new(70.0, 30.0), 26.0, 7.0),
            GaussianBlob::isotropic(Point2::new(62.0, 24.0), 18.0, 4.5),
            GaussianBlob::isotropic(Point2::new(75.0, 75.0), 24.0, 5.0),
            GaussianBlob::isotropic(Point2::new(20.0, 20.0), 16.0, 5.5),
        ],
    );
    let field = DriftingField::new(hotspots, Vec2::new(0.02, 0.01));

    // 100 robots on a connected 10x10 grid (spacing inside Rc = 10 m).
    let start = scenario::grid_start_spaced(region, 100, 9.3).unwrap();
    let mut sim = CmaBuilder::new(region, start).run(&field)?;

    println!("initial formation:");
    println!("{}", ascii_scatter(&sim.positions(), region, 50, 20)?);

    let mut timeline = DeltaTimeline::new();
    let e0 = timeline.record(&sim, &grid)?;
    println!(
        "t =  0 min   delta = {:>8.1}   connected = {}",
        e0.delta, e0.connected
    );

    for minute in 1..=60 {
        let report = sim.step()?;
        if minute % 15 == 0 {
            let e = timeline.record(&sim, &grid)?;
            println!(
                "t = {minute:>2} min   delta = {:>8.1}   connected = {}   moved = {:>3}   max step = {:.2} m",
                e.delta, e.connected, report.moved, report.max_displacement
            );
        }
    }

    println!("\nformation after one hour (denser at the hotspots):");
    println!("{}", ascii_scatter(&sim.positions(), region, 50, 20)?);

    let frozen = field.at_time(sim.time());
    let final_eval = DeltaEvaluator::new(&frozen, &grid, 10.0).evaluate(&sim.positions())?;
    let components = UnitDiskGraph::new(sim.positions(), 10.0)?.component_count();
    println!(
        "final: delta {:.1} (started {:.1}), {} network component(s), best seen {:.1}",
        final_eval.delta,
        e0.delta,
        components,
        timeline.best_delta().unwrap_or(f64::NAN)
    );
    let total_travel: f64 = sim.nodes().iter().map(|n| n.traveled).sum();
    println!("total distance traveled by the swarm: {total_travel:.1} m");
    Ok(())
}
