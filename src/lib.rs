//! Spatio-temporal distribution of cyber-physical systems for
//! environment abstraction.
//!
//! A from-scratch Rust reproduction of Kong, Jiang & Wu, *"Optimizing
//! the Spatio-Temporal Distribution of Cyber-Physical Systems for
//! Environment Abstraction"* (ICDCS 2010): given `k` sensing nodes and
//! a region of interest, place (or move) them so that the surface
//! rebuilt from their samples by Delaunay triangulation matches the
//! real environment as closely as possible, subject to the node network
//! staying connected.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `cps-core` | FRA (stationary placement), CMA (mobile exploration), curvature, virtual forces, CWD metrics |
//! | [`field`] | `cps-field` | scalar fields, time dynamics, reconstruction, the δ metric |
//! | [`geometry`] | `cps-geometry` | Delaunay triangulation, predicates, regions |
//! | [`network`] | `cps-network` | unit-disk graphs, components, MST, relay planning |
//! | [`sim`] | `cps-sim` | discrete-time mobile-node simulator |
//! | [`greenorbs`] | `cps-greenorbs` | synthetic GreenOrbs-style forest sensing trace |
//! | [`linalg`] | `cps-linalg` | small dense linear algebra |
//! | [`viz`] | `cps-viz` | ASCII/CSV/PGM figure rendering |
//!
//! Most programs only need [`prelude`], which gathers the common
//! surface (region/grid types, the two algorithm builders, deployment
//! evaluation, the [`Parallelism`](cps_field::Parallelism) thread
//! policy) behind one import, and [`Error`], which any crate's error
//! converts into with `?`.
//!
//! # Quickstart
//!
//! Place 20 stationary nodes on a known surface with the foresighted
//! refinement algorithm and measure the reconstruction error:
//!
//! ```
//! use cps::prelude::*;
//!
//! fn main() -> Result<(), cps::Error> {
//!     let region = Rect::square(100.0)?;
//!     let grid = GridSpec::new(region, 51, 51)?;
//!     let reference = cps::field::PeaksField::new(region, 8.0);
//!
//!     let result = FraBuilder::new(20, 10.0)
//!         .grid(grid)
//!         .parallelism(Parallelism::auto())
//!         .run(&reference)?;
//!     let eval = DeltaEvaluator::new(&reference, &grid, 10.0).evaluate(&result.positions)?;
//!     assert!(eval.connected);
//!     println!("delta = {}", eval.delta);
//!     Ok(())
//! }
//! ```
//!
//! The δ quadrature and the per-node sense/decide sweeps run on a
//! row-sharded thread pool ([`Parallelism`](cps_field::Parallelism)
//! picks the worker count, `auto()` = all cores); results are
//! bit-identical at any thread count. See `examples/` for end-to-end
//! scenarios and `crates/bench/src/bin/` for the harnesses that
//! regenerate every figure of the paper (documented in EXPERIMENTS.md).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
pub mod prelude;

pub use error::Error;

pub use cps_core as core;
pub use cps_field as field;
pub use cps_geometry as geometry;
pub use cps_greenorbs as greenorbs;
pub use cps_linalg as linalg;
pub use cps_network as network;
pub use cps_sim as sim;
pub use cps_viz as viz;
