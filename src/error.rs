//! A single error type spanning the whole workspace.

use std::error::Error as StdError;
use std::fmt;

/// Any error produced by the workspace, one variant per crate.
///
/// Every crate keeps its own focused error enum; this umbrella type
/// exists so applications can use `Result<_, cps::Error>` (or
/// `Box<dyn Error>`) end-to-end without writing conversion glue. All
/// per-crate errors convert in with `?` via the [`From`] impls below.
///
/// ```
/// use cps::prelude::*;
///
/// fn plan(k: usize) -> Result<Vec<Point2>, cps::Error> {
///     let region = Rect::square(100.0)?; // GeometryError -> cps::Error
///     let grid = GridSpec::new(region, 41, 41)?;
///     let reference = cps::field::PeaksField::new(region, 8.0);
///     let result = FraBuilder::new(k, 10.0).grid(grid).run(&reference)?;
///     Ok(result.positions) // CoreError -> cps::Error
/// }
///
/// assert!(plan(20).is_ok());
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// From `cps-linalg`: dense linear-algebra failures.
    Linalg(cps_linalg::LinalgError),
    /// From `cps-geometry`: geometric construction and query failures.
    Geometry(cps_geometry::GeometryError),
    /// From `cps-field`: field construction and evaluation failures.
    Field(cps_field::FieldError),
    /// From `cps-network`: connectivity structure failures.
    Network(cps_network::NetworkError),
    /// From `cps-greenorbs`: trace generation and loading failures.
    Trace(cps_greenorbs::TraceError),
    /// From `cps-core`: distribution algorithm failures.
    Core(cps_core::CoreError),
    /// From `cps-viz`: rendering and figure-export failures.
    Viz(cps_viz::VizError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Linalg(e) => write!(f, "linalg: {e}"),
            Error::Geometry(e) => write!(f, "geometry: {e}"),
            Error::Field(e) => write!(f, "field: {e}"),
            Error::Network(e) => write!(f, "network: {e}"),
            Error::Trace(e) => write!(f, "trace: {e}"),
            Error::Core(e) => write!(f, "core: {e}"),
            Error::Viz(e) => write!(f, "viz: {e}"),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Linalg(e) => Some(e),
            Error::Geometry(e) => Some(e),
            Error::Field(e) => Some(e),
            Error::Network(e) => Some(e),
            Error::Trace(e) => Some(e),
            Error::Core(e) => Some(e),
            Error::Viz(e) => Some(e),
        }
    }
}

impl From<cps_linalg::LinalgError> for Error {
    fn from(e: cps_linalg::LinalgError) -> Self {
        Error::Linalg(e)
    }
}

impl From<cps_geometry::GeometryError> for Error {
    fn from(e: cps_geometry::GeometryError) -> Self {
        Error::Geometry(e)
    }
}

impl From<cps_field::FieldError> for Error {
    fn from(e: cps_field::FieldError) -> Self {
        Error::Field(e)
    }
}

impl From<cps_network::NetworkError> for Error {
    fn from(e: cps_network::NetworkError) -> Self {
        Error::Network(e)
    }
}

impl From<cps_greenorbs::TraceError> for Error {
    fn from(e: cps_greenorbs::TraceError) -> Self {
        Error::Trace(e)
    }
}

impl From<cps_core::CoreError> for Error {
    fn from(e: cps_core::CoreError) -> Self {
        Error::Core(e)
    }
}

impl From<cps_viz::VizError> for Error {
    fn from(e: cps_viz::VizError) -> Self {
        Error::Viz(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_crate_error_converts_and_sources() {
        let errs: Vec<Error> = vec![
            cps_linalg::LinalgError::Singular.into(),
            cps_geometry::GeometryError::EmptyGrid.into(),
            cps_field::FieldError::NonFiniteValue.into(),
            cps_network::NetworkError::InvalidRadius.into(),
            cps_greenorbs::TraceError::EmptyRegion.into(),
            cps_core::CoreError::DegenerateFit.into(),
            cps_viz::VizError::EmptyCanvas {
                what: "heatmap",
                cols: 0,
                rows: 0,
            }
            .into(),
        ];
        for e in &errs {
            assert!(StdError::source(e).is_some(), "{e:?} must expose a source");
            assert!(!e.to_string().is_empty());
        }
        assert!(errs[0].to_string().starts_with("linalg:"));
        assert!(errs[4].to_string().starts_with("trace:"));
        assert!(errs[6].to_string().starts_with("viz:"));
    }

    #[test]
    fn question_mark_works_across_crates() {
        fn inner() -> Result<(), Error> {
            let region = cps_geometry::Rect::square(10.0)?;
            let _grid = cps_geometry::GridSpec::new(region, 0, 0)?;
            Ok(())
        }
        assert!(matches!(
            inner(),
            Err(Error::Geometry(cps_geometry::GeometryError::EmptyGrid))
        ));
    }
}
