//! The commonly used surface of the workspace in one import.
//!
//! ```
//! use cps::prelude::*;
//! ```
//!
//! brings in the region/grid types, the field traits, the two
//! algorithm builders ([`FraBuilder`] for stationary placement,
//! [`CmaBuilder`] for the mobile swarm), deployment evaluation
//! ([`DeltaEvaluator`] and its [`EvalOptions`]), the thread-count
//! policy [`Parallelism`], the instrumentation layer (the `obs` module
//! plus its [`RunMetrics`] snapshot), and the workspace-wide
//! [`Error`]. Anything more specialised stays behind the
//! per-crate modules (`cps::field`, `cps::geometry`, ...).

pub use crate::Error;
pub use cps_core::osd::{FraBuilder, FraResult};
pub use cps_core::{
    analyze_deployment, analyze_deployment_with, CoreError, DeltaEvaluator, DeploymentEvaluation,
    DeploymentReport, EvalOptions, SurvivabilityReport, SurvivabilityTracker,
};
pub use cps_field::{Field, Parallelism, ReconstructedSurface, Static, TimeVaryingField};
pub use cps_geometry::{GridSpec, Point2, Rect};
pub use cps_obs as obs;
pub use cps_obs::{PhaseRecord, RunMetrics};
pub use cps_sim::{
    scenario, CmaBuilder, DeltaTimeline, FaultEvent, FaultPlan, FaultPlanBuilder, RecoveryPolicy,
    SimConfig, Simulation,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prelude_covers_the_quickstart_path() {
        let region = Rect::square(50.0).unwrap();
        let grid = GridSpec::new(region, 31, 31).unwrap();
        let reference = cps_field::PeaksField::new(region, 8.0);
        let result = FraBuilder::new(12, 10.0)
            .grid(grid)
            .parallelism(Parallelism::auto())
            .run(&reference)
            .unwrap();
        let eval = DeltaEvaluator::new(&reference, &grid, 10.0)
            .evaluate(&result.positions)
            .unwrap();
        assert!(eval.connected);

        let field = Static::new(cps_field::PeaksField::new(region, 8.0));
        let start = scenario::grid_start(region, 9);
        let mut sim = CmaBuilder::new(region, start).run(field).unwrap();
        sim.step().unwrap();
        let mut timeline = DeltaTimeline::new();
        timeline.record(&sim, &grid).unwrap();
        assert_eq!(timeline.len(), 1);
    }

    #[test]
    fn prelude_covers_the_metrics_path() {
        obs::reset();
        obs::enable();
        let region = Rect::square(50.0).unwrap();
        let grid = GridSpec::new(region, 31, 31).unwrap();
        let reference = cps_field::PeaksField::new(region, 8.0);
        // Generous radius: no budget goes to relays, so all 10 picks
        // are refinement picks and each one is a Delaunay insert.
        let result = FraBuilder::new(10, 100.0)
            .grid(grid)
            .run(&reference)
            .unwrap();
        let metrics: RunMetrics = obs::snapshot();
        obs::disable();
        assert_eq!(result.positions.len(), 10);
        assert!(metrics.counter(obs::Counter::DelaunayInserts) >= 10);
        let _records: &[PhaseRecord] = &metrics.phases;
    }

    #[test]
    fn prelude_covers_the_fault_injection_path() {
        let region = Rect::square(50.0).unwrap();
        let field = Static::new(cps_field::PeaksField::new(region, 8.0));
        let plan = FaultPlanBuilder::default()
            .seed(7)
            .kill(0, 1)
            .link_loss(0.1, 2)
            .recovery(RecoveryPolicy::Auto)
            .build()
            .unwrap();
        let start = scenario::grid_start(region, 9);
        let mut sim = CmaBuilder::new(region, start)
            .faults(plan)
            .run(field)
            .unwrap();
        let mut tracker = SurvivabilityTracker::new(9);
        for _ in 0..3 {
            let r = sim.step().unwrap();
            tracker.observe_messages(r.messages, r.retried, r.dropped);
            tracker.observe_slot(sim.time(), sim.alive_count(), r.components, None);
        }
        assert_eq!(sim.alive_count(), 8);
        assert!(sim
            .fault_events()
            .iter()
            .any(|e| matches!(e, FaultEvent::Death { node: 0, .. })));
        let report: SurvivabilityReport = tracker.finish();
        assert_eq!(report.surviving_nodes, 8);
    }
}
