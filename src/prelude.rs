//! The commonly used surface of the workspace in one import.
//!
//! ```
//! use cps::prelude::*;
//! ```
//!
//! brings in the region/grid types, the field traits, the two
//! algorithm builders ([`FraBuilder`] for stationary placement,
//! [`CmaBuilder`] for the mobile swarm), deployment evaluation, the
//! thread-count policy [`Parallelism`], and the workspace-wide
//! [`Error`](crate::Error). Anything more specialised stays behind the
//! per-crate modules (`cps::field`, `cps::geometry`, ...).

pub use crate::Error;
pub use cps_core::osd::{FraBuilder, FraResult};
pub use cps_core::{
    analyze_deployment, analyze_deployment_with, evaluate_deployment, evaluate_deployment_with,
    CoreError, DeploymentEvaluation, DeploymentReport,
};
pub use cps_field::{Field, Parallelism, ReconstructedSurface, Static, TimeVaryingField};
pub use cps_geometry::{GridSpec, Point2, Rect};
pub use cps_sim::{scenario, CmaBuilder, DeltaTimeline, SimConfig, Simulation};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prelude_covers_the_quickstart_path() {
        let region = Rect::square(50.0).unwrap();
        let grid = GridSpec::new(region, 31, 31).unwrap();
        let reference = cps_field::PeaksField::new(region, 8.0);
        let result = FraBuilder::new(12, 10.0)
            .grid(grid)
            .parallelism(Parallelism::auto())
            .run(&reference)
            .unwrap();
        let eval = evaluate_deployment(&reference, &result.positions, 10.0, &grid).unwrap();
        assert!(eval.connected);

        let field = Static::new(cps_field::PeaksField::new(region, 8.0));
        let start = scenario::grid_start(region, 9);
        let mut sim = CmaBuilder::new(region, start).run(field).unwrap();
        sim.step().unwrap();
        let mut timeline = DeltaTimeline::new();
        timeline.record(&sim, &grid).unwrap();
        assert_eq!(timeline.len(), 1);
    }
}
