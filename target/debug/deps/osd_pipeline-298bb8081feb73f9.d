/root/repo/target/debug/deps/osd_pipeline-298bb8081feb73f9.d: tests/osd_pipeline.rs

/root/repo/target/debug/deps/osd_pipeline-298bb8081feb73f9: tests/osd_pipeline.rs

tests/osd_pipeline.rs:
