/root/repo/target/debug/deps/cps_bench-0d91af75fb5346d2.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcps_bench-0d91af75fb5346d2.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
