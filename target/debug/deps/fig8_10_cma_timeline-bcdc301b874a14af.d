/root/repo/target/debug/deps/fig8_10_cma_timeline-bcdc301b874a14af.d: crates/bench/src/bin/fig8_10_cma_timeline.rs

/root/repo/target/debug/deps/libfig8_10_cma_timeline-bcdc301b874a14af.rmeta: crates/bench/src/bin/fig8_10_cma_timeline.rs

crates/bench/src/bin/fig8_10_cma_timeline.rs:
