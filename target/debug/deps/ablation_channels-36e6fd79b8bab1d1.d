/root/repo/target/debug/deps/ablation_channels-36e6fd79b8bab1d1.d: crates/bench/src/bin/ablation_channels.rs Cargo.toml

/root/repo/target/debug/deps/libablation_channels-36e6fd79b8bab1d1.rmeta: crates/bench/src/bin/ablation_channels.rs Cargo.toml

crates/bench/src/bin/ablation_channels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
