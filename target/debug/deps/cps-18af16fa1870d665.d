/root/repo/target/debug/deps/cps-18af16fa1870d665.d: src/lib.rs src/error.rs src/prelude.rs

/root/repo/target/debug/deps/libcps-18af16fa1870d665.rmeta: src/lib.rs src/error.rs src/prelude.rs

src/lib.rs:
src/error.rs:
src/prelude.rs:
