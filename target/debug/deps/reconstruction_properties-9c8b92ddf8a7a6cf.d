/root/repo/target/debug/deps/reconstruction_properties-9c8b92ddf8a7a6cf.d: tests/reconstruction_properties.rs

/root/repo/target/debug/deps/libreconstruction_properties-9c8b92ddf8a7a6cf.rmeta: tests/reconstruction_properties.rs

tests/reconstruction_properties.rs:
