/root/repo/target/debug/deps/field_properties-9784eff86ffb3ae6.d: crates/field/tests/field_properties.rs

/root/repo/target/debug/deps/field_properties-9784eff86ffb3ae6: crates/field/tests/field_properties.rs

crates/field/tests/field_properties.rs:
