/root/repo/target/debug/deps/survivability-78a8d06086202f66.d: tests/survivability.rs

/root/repo/target/debug/deps/survivability-78a8d06086202f66: tests/survivability.rs

tests/survivability.rs:
