/root/repo/target/debug/deps/ablation_foresight-7bcd051257886858.d: crates/bench/src/bin/ablation_foresight.rs

/root/repo/target/debug/deps/ablation_foresight-7bcd051257886858: crates/bench/src/bin/ablation_foresight.rs

crates/bench/src/bin/ablation_foresight.rs:
