/root/repo/target/debug/deps/fig8_10_cma_timeline-4b9fade3aa445896.d: crates/bench/src/bin/fig8_10_cma_timeline.rs

/root/repo/target/debug/deps/fig8_10_cma_timeline-4b9fade3aa445896: crates/bench/src/bin/fig8_10_cma_timeline.rs

crates/bench/src/bin/fig8_10_cma_timeline.rs:
