/root/repo/target/debug/deps/proptest-2c325a501af20570.d: /root/depstubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-2c325a501af20570.rmeta: /root/depstubs/proptest/src/lib.rs

/root/depstubs/proptest/src/lib.rs:
