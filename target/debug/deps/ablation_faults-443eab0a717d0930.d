/root/repo/target/debug/deps/ablation_faults-443eab0a717d0930.d: crates/bench/src/bin/ablation_faults.rs

/root/repo/target/debug/deps/ablation_faults-443eab0a717d0930: crates/bench/src/bin/ablation_faults.rs

crates/bench/src/bin/ablation_faults.rs:
