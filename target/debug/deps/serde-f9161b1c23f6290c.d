/root/repo/target/debug/deps/serde-f9161b1c23f6290c.d: /root/depstubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f9161b1c23f6290c.rlib: /root/depstubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f9161b1c23f6290c.rmeta: /root/depstubs/serde/src/lib.rs

/root/depstubs/serde/src/lib.rs:
