/root/repo/target/debug/deps/cps-7c08c955d5f3b7c3.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/cps-7c08c955d5f3b7c3: crates/cli/src/main.rs

crates/cli/src/main.rs:
