/root/repo/target/debug/deps/parallel_delta-0c487dcfd9a148b4.d: crates/field/tests/parallel_delta.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_delta-0c487dcfd9a148b4.rmeta: crates/field/tests/parallel_delta.rs Cargo.toml

crates/field/tests/parallel_delta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
