/root/repo/target/debug/deps/ostd_pipeline-7e1f2ae1afcacfa6.d: tests/ostd_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libostd_pipeline-7e1f2ae1afcacfa6.rmeta: tests/ostd_pipeline.rs Cargo.toml

tests/ostd_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
