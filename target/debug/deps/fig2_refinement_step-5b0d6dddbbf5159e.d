/root/repo/target/debug/deps/fig2_refinement_step-5b0d6dddbbf5159e.d: crates/bench/src/bin/fig2_refinement_step.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_refinement_step-5b0d6dddbbf5159e.rmeta: crates/bench/src/bin/fig2_refinement_step.rs Cargo.toml

crates/bench/src/bin/fig2_refinement_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
