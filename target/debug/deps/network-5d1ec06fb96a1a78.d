/root/repo/target/debug/deps/network-5d1ec06fb96a1a78.d: crates/bench/benches/network.rs

/root/repo/target/debug/deps/libnetwork-5d1ec06fb96a1a78.rmeta: crates/bench/benches/network.rs

crates/bench/benches/network.rs:
