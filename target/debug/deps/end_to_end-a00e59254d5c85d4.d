/root/repo/target/debug/deps/end_to_end-a00e59254d5c85d4.d: crates/cli/tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-a00e59254d5c85d4.rmeta: crates/cli/tests/end_to_end.rs

crates/cli/tests/end_to_end.rs:

# env-dep:CARGO_BIN_EXE_cps=placeholder:cps
