/root/repo/target/debug/deps/criterion-b85db4999ab0c1fe.d: /root/depstubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b85db4999ab0c1fe.rlib: /root/depstubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b85db4999ab0c1fe.rmeta: /root/depstubs/criterion/src/lib.rs

/root/depstubs/criterion/src/lib.rs:
