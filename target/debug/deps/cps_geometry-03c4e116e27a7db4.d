/root/repo/target/debug/deps/cps_geometry-03c4e116e27a7db4.d: crates/geometry/src/lib.rs crates/geometry/src/delaunay.rs crates/geometry/src/error.rs crates/geometry/src/hull.rs crates/geometry/src/index.rs crates/geometry/src/point.rs crates/geometry/src/polygon.rs crates/geometry/src/predicates.rs crates/geometry/src/region.rs crates/geometry/src/triangle.rs crates/geometry/src/voronoi.rs Cargo.toml

/root/repo/target/debug/deps/libcps_geometry-03c4e116e27a7db4.rmeta: crates/geometry/src/lib.rs crates/geometry/src/delaunay.rs crates/geometry/src/error.rs crates/geometry/src/hull.rs crates/geometry/src/index.rs crates/geometry/src/point.rs crates/geometry/src/polygon.rs crates/geometry/src/predicates.rs crates/geometry/src/region.rs crates/geometry/src/triangle.rs crates/geometry/src/voronoi.rs Cargo.toml

crates/geometry/src/lib.rs:
crates/geometry/src/delaunay.rs:
crates/geometry/src/error.rs:
crates/geometry/src/hull.rs:
crates/geometry/src/index.rs:
crates/geometry/src/point.rs:
crates/geometry/src/polygon.rs:
crates/geometry/src/predicates.rs:
crates/geometry/src/region.rs:
crates/geometry/src/triangle.rs:
crates/geometry/src/voronoi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
