/root/repo/target/debug/deps/ablation_foresight-e70127b69d716c41.d: crates/bench/src/bin/ablation_foresight.rs

/root/repo/target/debug/deps/libablation_foresight-e70127b69d716c41.rmeta: crates/bench/src/bin/ablation_foresight.rs

crates/bench/src/bin/ablation_foresight.rs:
