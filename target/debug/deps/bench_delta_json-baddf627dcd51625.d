/root/repo/target/debug/deps/bench_delta_json-baddf627dcd51625.d: crates/bench/src/bin/bench_delta_json.rs

/root/repo/target/debug/deps/libbench_delta_json-baddf627dcd51625.rmeta: crates/bench/src/bin/bench_delta_json.rs

crates/bench/src/bin/bench_delta_json.rs:
