/root/repo/target/debug/deps/ablation_faults-1717005b175f43ed.d: crates/bench/src/bin/ablation_faults.rs

/root/repo/target/debug/deps/ablation_faults-1717005b175f43ed: crates/bench/src/bin/ablation_faults.rs

crates/bench/src/bin/ablation_faults.rs:
