/root/repo/target/debug/deps/solver_properties-f2b1f35da2bdc1f9.d: crates/linalg/tests/solver_properties.rs

/root/repo/target/debug/deps/solver_properties-f2b1f35da2bdc1f9: crates/linalg/tests/solver_properties.rs

crates/linalg/tests/solver_properties.rs:
