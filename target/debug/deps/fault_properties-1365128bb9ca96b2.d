/root/repo/target/debug/deps/fault_properties-1365128bb9ca96b2.d: crates/sim/tests/fault_properties.rs

/root/repo/target/debug/deps/fault_properties-1365128bb9ca96b2: crates/sim/tests/fault_properties.rs

crates/sim/tests/fault_properties.rs:
