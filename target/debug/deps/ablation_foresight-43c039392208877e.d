/root/repo/target/debug/deps/ablation_foresight-43c039392208877e.d: crates/bench/src/bin/ablation_foresight.rs Cargo.toml

/root/repo/target/debug/deps/libablation_foresight-43c039392208877e.rmeta: crates/bench/src/bin/ablation_foresight.rs Cargo.toml

crates/bench/src/bin/ablation_foresight.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
