/root/repo/target/debug/deps/osd_pipeline-844c961679cd720d.d: tests/osd_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libosd_pipeline-844c961679cd720d.rmeta: tests/osd_pipeline.rs Cargo.toml

tests/osd_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
