/root/repo/target/debug/deps/fig4_lcm_demo-45264ed18450e0c4.d: crates/bench/src/bin/fig4_lcm_demo.rs

/root/repo/target/debug/deps/libfig4_lcm_demo-45264ed18450e0c4.rmeta: crates/bench/src/bin/fig4_lcm_demo.rs

crates/bench/src/bin/fig4_lcm_demo.rs:
