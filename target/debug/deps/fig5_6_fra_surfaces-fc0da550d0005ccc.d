/root/repo/target/debug/deps/fig5_6_fra_surfaces-fc0da550d0005ccc.d: crates/bench/src/bin/fig5_6_fra_surfaces.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_6_fra_surfaces-fc0da550d0005ccc.rmeta: crates/bench/src/bin/fig5_6_fra_surfaces.rs Cargo.toml

crates/bench/src/bin/fig5_6_fra_surfaces.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
