/root/repo/target/debug/deps/ablation_trace_sampling-ec0825a764ee45f6.d: crates/bench/src/bin/ablation_trace_sampling.rs

/root/repo/target/debug/deps/libablation_trace_sampling-ec0825a764ee45f6.rmeta: crates/bench/src/bin/ablation_trace_sampling.rs

crates/bench/src/bin/ablation_trace_sampling.rs:
