/root/repo/target/debug/deps/ablation_concave-93c8530baac3dce3.d: crates/bench/src/bin/ablation_concave.rs

/root/repo/target/debug/deps/libablation_concave-93c8530baac3dce3.rmeta: crates/bench/src/bin/ablation_concave.rs

crates/bench/src/bin/ablation_concave.rs:
