/root/repo/target/debug/deps/reconstruction_properties-f59ce11f336bd0e6.d: tests/reconstruction_properties.rs

/root/repo/target/debug/deps/reconstruction_properties-f59ce11f336bd0e6: tests/reconstruction_properties.rs

tests/reconstruction_properties.rs:
