/root/repo/target/debug/deps/network-a2d157888a82d851.d: crates/bench/benches/network.rs Cargo.toml

/root/repo/target/debug/deps/libnetwork-a2d157888a82d851.rmeta: crates/bench/benches/network.rs Cargo.toml

crates/bench/benches/network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
