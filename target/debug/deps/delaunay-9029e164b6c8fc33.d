/root/repo/target/debug/deps/delaunay-9029e164b6c8fc33.d: crates/bench/benches/delaunay.rs Cargo.toml

/root/repo/target/debug/deps/libdelaunay-9029e164b6c8fc33.rmeta: crates/bench/benches/delaunay.rs Cargo.toml

crates/bench/benches/delaunay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
