/root/repo/target/debug/deps/bench_delta_json-64a6305a28c314c1.d: crates/bench/src/bin/bench_delta_json.rs Cargo.toml

/root/repo/target/debug/deps/libbench_delta_json-64a6305a28c314c1.rmeta: crates/bench/src/bin/bench_delta_json.rs Cargo.toml

crates/bench/src/bin/bench_delta_json.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
