/root/repo/target/debug/deps/fig1_reference_surface-4247fabbb7750401.d: crates/bench/src/bin/fig1_reference_surface.rs

/root/repo/target/debug/deps/fig1_reference_surface-4247fabbb7750401: crates/bench/src/bin/fig1_reference_surface.rs

crates/bench/src/bin/fig1_reference_surface.rs:
