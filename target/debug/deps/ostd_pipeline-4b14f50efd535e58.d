/root/repo/target/debug/deps/ostd_pipeline-4b14f50efd535e58.d: tests/ostd_pipeline.rs

/root/repo/target/debug/deps/libostd_pipeline-4b14f50efd535e58.rmeta: tests/ostd_pipeline.rs

tests/ostd_pipeline.rs:
