/root/repo/target/debug/deps/ablation_rc-873cab57388cda0f.d: crates/bench/src/bin/ablation_rc.rs

/root/repo/target/debug/deps/libablation_rc-873cab57388cda0f.rmeta: crates/bench/src/bin/ablation_rc.rs

crates/bench/src/bin/ablation_rc.rs:
