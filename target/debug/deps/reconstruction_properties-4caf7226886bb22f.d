/root/repo/target/debug/deps/reconstruction_properties-4caf7226886bb22f.d: tests/reconstruction_properties.rs Cargo.toml

/root/repo/target/debug/deps/libreconstruction_properties-4caf7226886bb22f.rmeta: tests/reconstruction_properties.rs Cargo.toml

tests/reconstruction_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
