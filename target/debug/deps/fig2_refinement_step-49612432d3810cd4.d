/root/repo/target/debug/deps/fig2_refinement_step-49612432d3810cd4.d: crates/bench/src/bin/fig2_refinement_step.rs

/root/repo/target/debug/deps/libfig2_refinement_step-49612432d3810cd4.rmeta: crates/bench/src/bin/fig2_refinement_step.rs

crates/bench/src/bin/fig2_refinement_step.rs:
