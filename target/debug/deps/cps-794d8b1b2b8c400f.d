/root/repo/target/debug/deps/cps-794d8b1b2b8c400f.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/libcps-794d8b1b2b8c400f.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
