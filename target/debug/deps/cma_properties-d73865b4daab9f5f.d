/root/repo/target/debug/deps/cma_properties-d73865b4daab9f5f.d: crates/core/tests/cma_properties.rs Cargo.toml

/root/repo/target/debug/deps/libcma_properties-d73865b4daab9f5f.rmeta: crates/core/tests/cma_properties.rs Cargo.toml

crates/core/tests/cma_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
