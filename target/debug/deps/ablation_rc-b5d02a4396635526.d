/root/repo/target/debug/deps/ablation_rc-b5d02a4396635526.d: crates/bench/src/bin/ablation_rc.rs Cargo.toml

/root/repo/target/debug/deps/libablation_rc-b5d02a4396635526.rmeta: crates/bench/src/bin/ablation_rc.rs Cargo.toml

crates/bench/src/bin/ablation_rc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
