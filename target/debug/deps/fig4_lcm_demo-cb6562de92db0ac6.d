/root/repo/target/debug/deps/fig4_lcm_demo-cb6562de92db0ac6.d: crates/bench/src/bin/fig4_lcm_demo.rs

/root/repo/target/debug/deps/libfig4_lcm_demo-cb6562de92db0ac6.rmeta: crates/bench/src/bin/fig4_lcm_demo.rs

crates/bench/src/bin/fig4_lcm_demo.rs:
