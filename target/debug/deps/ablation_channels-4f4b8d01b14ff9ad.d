/root/repo/target/debug/deps/ablation_channels-4f4b8d01b14ff9ad.d: crates/bench/src/bin/ablation_channels.rs Cargo.toml

/root/repo/target/debug/deps/libablation_channels-4f4b8d01b14ff9ad.rmeta: crates/bench/src/bin/ablation_channels.rs Cargo.toml

crates/bench/src/bin/ablation_channels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
