/root/repo/target/debug/deps/ablation_channels-3cde8a0e6d9e65f9.d: crates/bench/src/bin/ablation_channels.rs

/root/repo/target/debug/deps/libablation_channels-3cde8a0e6d9e65f9.rmeta: crates/bench/src/bin/ablation_channels.rs

crates/bench/src/bin/ablation_channels.rs:
