/root/repo/target/debug/deps/serde_json-df04a913014567f9.d: /root/depstubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-df04a913014567f9.rlib: /root/depstubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-df04a913014567f9.rmeta: /root/depstubs/serde_json/src/lib.rs

/root/depstubs/serde_json/src/lib.rs:
