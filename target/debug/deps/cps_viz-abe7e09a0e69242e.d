/root/repo/target/debug/deps/cps_viz-abe7e09a0e69242e.d: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/pgm.rs crates/viz/src/svg.rs crates/viz/src/topology.rs

/root/repo/target/debug/deps/libcps_viz-abe7e09a0e69242e.rmeta: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/pgm.rs crates/viz/src/svg.rs crates/viz/src/topology.rs

crates/viz/src/lib.rs:
crates/viz/src/ascii.rs:
crates/viz/src/csv.rs:
crates/viz/src/pgm.rs:
crates/viz/src/svg.rs:
crates/viz/src/topology.rs:
