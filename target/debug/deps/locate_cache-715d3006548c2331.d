/root/repo/target/debug/deps/locate_cache-715d3006548c2331.d: crates/geometry/tests/locate_cache.rs

/root/repo/target/debug/deps/locate_cache-715d3006548c2331: crates/geometry/tests/locate_cache.rs

crates/geometry/tests/locate_cache.rs:
