/root/repo/target/debug/deps/cps-682269d02a87a03a.d: src/lib.rs src/error.rs src/prelude.rs Cargo.toml

/root/repo/target/debug/deps/libcps-682269d02a87a03a.rmeta: src/lib.rs src/error.rs src/prelude.rs Cargo.toml

src/lib.rs:
src/error.rs:
src/prelude.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
