/root/repo/target/debug/deps/ablation_channels-4b2bb92005abc7c4.d: crates/bench/src/bin/ablation_channels.rs

/root/repo/target/debug/deps/libablation_channels-4b2bb92005abc7c4.rmeta: crates/bench/src/bin/ablation_channels.rs

crates/bench/src/bin/ablation_channels.rs:
