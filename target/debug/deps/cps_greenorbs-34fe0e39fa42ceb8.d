/root/repo/target/debug/deps/cps_greenorbs-34fe0e39fa42ceb8.d: crates/greenorbs/src/lib.rs crates/greenorbs/src/csv.rs crates/greenorbs/src/dataset.rs crates/greenorbs/src/error.rs crates/greenorbs/src/generator.rs crates/greenorbs/src/records.rs crates/greenorbs/src/stats.rs

/root/repo/target/debug/deps/libcps_greenorbs-34fe0e39fa42ceb8.rmeta: crates/greenorbs/src/lib.rs crates/greenorbs/src/csv.rs crates/greenorbs/src/dataset.rs crates/greenorbs/src/error.rs crates/greenorbs/src/generator.rs crates/greenorbs/src/records.rs crates/greenorbs/src/stats.rs

crates/greenorbs/src/lib.rs:
crates/greenorbs/src/csv.rs:
crates/greenorbs/src/dataset.rs:
crates/greenorbs/src/error.rs:
crates/greenorbs/src/generator.rs:
crates/greenorbs/src/records.rs:
crates/greenorbs/src/stats.rs:
