/root/repo/target/debug/deps/fig5_6_fra_surfaces-a889de379de5d1b5.d: crates/bench/src/bin/fig5_6_fra_surfaces.rs

/root/repo/target/debug/deps/libfig5_6_fra_surfaces-a889de379de5d1b5.rmeta: crates/bench/src/bin/fig5_6_fra_surfaces.rs

crates/bench/src/bin/fig5_6_fra_surfaces.rs:
