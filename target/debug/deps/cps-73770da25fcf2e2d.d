/root/repo/target/debug/deps/cps-73770da25fcf2e2d.d: src/lib.rs src/error.rs src/prelude.rs

/root/repo/target/debug/deps/cps-73770da25fcf2e2d: src/lib.rs src/error.rs src/prelude.rs

src/lib.rs:
src/error.rs:
src/prelude.rs:
