/root/repo/target/debug/deps/cps_bench-af2a6516b44cde8f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcps_bench-af2a6516b44cde8f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcps_bench-af2a6516b44cde8f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
