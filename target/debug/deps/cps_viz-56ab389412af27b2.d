/root/repo/target/debug/deps/cps_viz-56ab389412af27b2.d: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/pgm.rs crates/viz/src/svg.rs crates/viz/src/topology.rs

/root/repo/target/debug/deps/libcps_viz-56ab389412af27b2.rmeta: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/pgm.rs crates/viz/src/svg.rs crates/viz/src/topology.rs

crates/viz/src/lib.rs:
crates/viz/src/ascii.rs:
crates/viz/src/csv.rs:
crates/viz/src/pgm.rs:
crates/viz/src/svg.rs:
crates/viz/src/topology.rs:
