/root/repo/target/debug/deps/parallel_delta-c12b0a6074b8ca2e.d: crates/field/tests/parallel_delta.rs

/root/repo/target/debug/deps/parallel_delta-c12b0a6074b8ca2e: crates/field/tests/parallel_delta.rs

crates/field/tests/parallel_delta.rs:
