/root/repo/target/debug/deps/fra_properties-13a9ee05ef13ec74.d: crates/core/tests/fra_properties.rs

/root/repo/target/debug/deps/libfra_properties-13a9ee05ef13ec74.rmeta: crates/core/tests/fra_properties.rs

crates/core/tests/fra_properties.rs:
