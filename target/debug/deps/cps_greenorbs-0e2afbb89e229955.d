/root/repo/target/debug/deps/cps_greenorbs-0e2afbb89e229955.d: crates/greenorbs/src/lib.rs crates/greenorbs/src/csv.rs crates/greenorbs/src/dataset.rs crates/greenorbs/src/error.rs crates/greenorbs/src/generator.rs crates/greenorbs/src/records.rs crates/greenorbs/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libcps_greenorbs-0e2afbb89e229955.rmeta: crates/greenorbs/src/lib.rs crates/greenorbs/src/csv.rs crates/greenorbs/src/dataset.rs crates/greenorbs/src/error.rs crates/greenorbs/src/generator.rs crates/greenorbs/src/records.rs crates/greenorbs/src/stats.rs Cargo.toml

crates/greenorbs/src/lib.rs:
crates/greenorbs/src/csv.rs:
crates/greenorbs/src/dataset.rs:
crates/greenorbs/src/error.rs:
crates/greenorbs/src/generator.rs:
crates/greenorbs/src/records.rs:
crates/greenorbs/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
