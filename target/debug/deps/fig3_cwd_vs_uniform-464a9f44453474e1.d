/root/repo/target/debug/deps/fig3_cwd_vs_uniform-464a9f44453474e1.d: crates/bench/src/bin/fig3_cwd_vs_uniform.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_cwd_vs_uniform-464a9f44453474e1.rmeta: crates/bench/src/bin/fig3_cwd_vs_uniform.rs Cargo.toml

crates/bench/src/bin/fig3_cwd_vs_uniform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
