/root/repo/target/debug/deps/fig3_cwd_vs_uniform-7b22b386958e1b84.d: crates/bench/src/bin/fig3_cwd_vs_uniform.rs

/root/repo/target/debug/deps/fig3_cwd_vs_uniform-7b22b386958e1b84: crates/bench/src/bin/fig3_cwd_vs_uniform.rs

crates/bench/src/bin/fig3_cwd_vs_uniform.rs:
