/root/repo/target/debug/deps/field_properties-3bc15ddc39868425.d: crates/field/tests/field_properties.rs Cargo.toml

/root/repo/target/debug/deps/libfield_properties-3bc15ddc39868425.rmeta: crates/field/tests/field_properties.rs Cargo.toml

crates/field/tests/field_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
