/root/repo/target/debug/deps/cps_network-3ebf19dfe652c5ad.d: crates/network/src/lib.rs crates/network/src/articulation.rs crates/network/src/components.rs crates/network/src/connect.rs crates/network/src/error.rs crates/network/src/graph.rs crates/network/src/mst.rs crates/network/src/paths.rs

/root/repo/target/debug/deps/libcps_network-3ebf19dfe652c5ad.rlib: crates/network/src/lib.rs crates/network/src/articulation.rs crates/network/src/components.rs crates/network/src/connect.rs crates/network/src/error.rs crates/network/src/graph.rs crates/network/src/mst.rs crates/network/src/paths.rs

/root/repo/target/debug/deps/libcps_network-3ebf19dfe652c5ad.rmeta: crates/network/src/lib.rs crates/network/src/articulation.rs crates/network/src/components.rs crates/network/src/connect.rs crates/network/src/error.rs crates/network/src/graph.rs crates/network/src/mst.rs crates/network/src/paths.rs

crates/network/src/lib.rs:
crates/network/src/articulation.rs:
crates/network/src/components.rs:
crates/network/src/connect.rs:
crates/network/src/error.rs:
crates/network/src/graph.rs:
crates/network/src/mst.rs:
crates/network/src/paths.rs:
