/root/repo/target/debug/deps/osd_pipeline-b3de46b1b5e4b79f.d: tests/osd_pipeline.rs

/root/repo/target/debug/deps/libosd_pipeline-b3de46b1b5e4b79f.rmeta: tests/osd_pipeline.rs

tests/osd_pipeline.rs:
