/root/repo/target/debug/deps/cps_cli-e8844e9f81bfd9ad.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libcps_cli-e8844e9f81bfd9ad.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
