/root/repo/target/debug/deps/rand-92d640a8041f360f.d: /root/depstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-92d640a8041f360f.rlib: /root/depstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-92d640a8041f360f.rmeta: /root/depstubs/rand/src/lib.rs

/root/depstubs/rand/src/lib.rs:
