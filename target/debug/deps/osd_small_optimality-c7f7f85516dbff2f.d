/root/repo/target/debug/deps/osd_small_optimality-c7f7f85516dbff2f.d: tests/osd_small_optimality.rs Cargo.toml

/root/repo/target/debug/deps/libosd_small_optimality-c7f7f85516dbff2f.rmeta: tests/osd_small_optimality.rs Cargo.toml

tests/osd_small_optimality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
