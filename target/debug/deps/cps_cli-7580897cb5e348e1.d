/root/repo/target/debug/deps/cps_cli-7580897cb5e348e1.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/cps_cli-7580897cb5e348e1: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
