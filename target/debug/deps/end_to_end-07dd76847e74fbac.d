/root/repo/target/debug/deps/end_to_end-07dd76847e74fbac.d: crates/cli/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-07dd76847e74fbac: crates/cli/tests/end_to_end.rs

crates/cli/tests/end_to_end.rs:

# env-dep:CARGO_BIN_EXE_cps=/root/repo/target/debug/cps
