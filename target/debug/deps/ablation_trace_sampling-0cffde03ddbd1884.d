/root/repo/target/debug/deps/ablation_trace_sampling-0cffde03ddbd1884.d: crates/bench/src/bin/ablation_trace_sampling.rs

/root/repo/target/debug/deps/ablation_trace_sampling-0cffde03ddbd1884: crates/bench/src/bin/ablation_trace_sampling.rs

crates/bench/src/bin/ablation_trace_sampling.rs:
