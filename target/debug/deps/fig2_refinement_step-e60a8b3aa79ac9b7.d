/root/repo/target/debug/deps/fig2_refinement_step-e60a8b3aa79ac9b7.d: crates/bench/src/bin/fig2_refinement_step.rs

/root/repo/target/debug/deps/libfig2_refinement_step-e60a8b3aa79ac9b7.rmeta: crates/bench/src/bin/fig2_refinement_step.rs

crates/bench/src/bin/fig2_refinement_step.rs:
