/root/repo/target/debug/deps/cps_network-b76f3368b710db8b.d: crates/network/src/lib.rs crates/network/src/articulation.rs crates/network/src/components.rs crates/network/src/connect.rs crates/network/src/error.rs crates/network/src/graph.rs crates/network/src/mst.rs crates/network/src/paths.rs

/root/repo/target/debug/deps/libcps_network-b76f3368b710db8b.rmeta: crates/network/src/lib.rs crates/network/src/articulation.rs crates/network/src/components.rs crates/network/src/connect.rs crates/network/src/error.rs crates/network/src/graph.rs crates/network/src/mst.rs crates/network/src/paths.rs

crates/network/src/lib.rs:
crates/network/src/articulation.rs:
crates/network/src/components.rs:
crates/network/src/connect.rs:
crates/network/src/error.rs:
crates/network/src/graph.rs:
crates/network/src/mst.rs:
crates/network/src/paths.rs:
