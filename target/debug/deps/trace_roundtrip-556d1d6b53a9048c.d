/root/repo/target/debug/deps/trace_roundtrip-556d1d6b53a9048c.d: tests/trace_roundtrip.rs

/root/repo/target/debug/deps/trace_roundtrip-556d1d6b53a9048c: tests/trace_roundtrip.rs

tests/trace_roundtrip.rs:
