/root/repo/target/debug/deps/cps_greenorbs-4bfccfcbee1b000c.d: crates/greenorbs/src/lib.rs crates/greenorbs/src/csv.rs crates/greenorbs/src/dataset.rs crates/greenorbs/src/error.rs crates/greenorbs/src/generator.rs crates/greenorbs/src/records.rs crates/greenorbs/src/stats.rs

/root/repo/target/debug/deps/cps_greenorbs-4bfccfcbee1b000c: crates/greenorbs/src/lib.rs crates/greenorbs/src/csv.rs crates/greenorbs/src/dataset.rs crates/greenorbs/src/error.rs crates/greenorbs/src/generator.rs crates/greenorbs/src/records.rs crates/greenorbs/src/stats.rs

crates/greenorbs/src/lib.rs:
crates/greenorbs/src/csv.rs:
crates/greenorbs/src/dataset.rs:
crates/greenorbs/src/error.rs:
crates/greenorbs/src/generator.rs:
crates/greenorbs/src/records.rs:
crates/greenorbs/src/stats.rs:
