/root/repo/target/debug/deps/swarm_scenarios-a4607e26e9046337.d: crates/sim/tests/swarm_scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libswarm_scenarios-a4607e26e9046337.rmeta: crates/sim/tests/swarm_scenarios.rs Cargo.toml

crates/sim/tests/swarm_scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
