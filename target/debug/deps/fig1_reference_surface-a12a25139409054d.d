/root/repo/target/debug/deps/fig1_reference_surface-a12a25139409054d.d: crates/bench/src/bin/fig1_reference_surface.rs

/root/repo/target/debug/deps/libfig1_reference_surface-a12a25139409054d.rmeta: crates/bench/src/bin/fig1_reference_surface.rs

crates/bench/src/bin/fig1_reference_surface.rs:
