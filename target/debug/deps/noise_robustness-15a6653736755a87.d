/root/repo/target/debug/deps/noise_robustness-15a6653736755a87.d: tests/noise_robustness.rs

/root/repo/target/debug/deps/libnoise_robustness-15a6653736755a87.rmeta: tests/noise_robustness.rs

tests/noise_robustness.rs:
