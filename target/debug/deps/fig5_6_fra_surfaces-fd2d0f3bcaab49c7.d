/root/repo/target/debug/deps/fig5_6_fra_surfaces-fd2d0f3bcaab49c7.d: crates/bench/src/bin/fig5_6_fra_surfaces.rs

/root/repo/target/debug/deps/fig5_6_fra_surfaces-fd2d0f3bcaab49c7: crates/bench/src/bin/fig5_6_fra_surfaces.rs

crates/bench/src/bin/fig5_6_fra_surfaces.rs:
