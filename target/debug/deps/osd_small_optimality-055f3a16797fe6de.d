/root/repo/target/debug/deps/osd_small_optimality-055f3a16797fe6de.d: tests/osd_small_optimality.rs

/root/repo/target/debug/deps/libosd_small_optimality-055f3a16797fe6de.rmeta: tests/osd_small_optimality.rs

tests/osd_small_optimality.rs:
