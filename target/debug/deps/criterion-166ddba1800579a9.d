/root/repo/target/debug/deps/criterion-166ddba1800579a9.d: /root/depstubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-166ddba1800579a9.rmeta: /root/depstubs/criterion/src/lib.rs

/root/depstubs/criterion/src/lib.rs:
