/root/repo/target/debug/deps/sim_step-a28b295d9441f974.d: crates/bench/benches/sim_step.rs Cargo.toml

/root/repo/target/debug/deps/libsim_step-a28b295d9441f974.rmeta: crates/bench/benches/sim_step.rs Cargo.toml

crates/bench/benches/sim_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
