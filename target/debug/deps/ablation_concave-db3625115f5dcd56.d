/root/repo/target/debug/deps/ablation_concave-db3625115f5dcd56.d: crates/bench/src/bin/ablation_concave.rs

/root/repo/target/debug/deps/libablation_concave-db3625115f5dcd56.rmeta: crates/bench/src/bin/ablation_concave.rs

crates/bench/src/bin/ablation_concave.rs:
