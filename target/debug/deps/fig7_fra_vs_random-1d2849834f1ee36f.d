/root/repo/target/debug/deps/fig7_fra_vs_random-1d2849834f1ee36f.d: crates/bench/src/bin/fig7_fra_vs_random.rs

/root/repo/target/debug/deps/fig7_fra_vs_random-1d2849834f1ee36f: crates/bench/src/bin/fig7_fra_vs_random.rs

crates/bench/src/bin/fig7_fra_vs_random.rs:
