/root/repo/target/debug/deps/cps_network-fad3502b1e07b546.d: crates/network/src/lib.rs crates/network/src/articulation.rs crates/network/src/components.rs crates/network/src/connect.rs crates/network/src/error.rs crates/network/src/graph.rs crates/network/src/mst.rs crates/network/src/paths.rs

/root/repo/target/debug/deps/cps_network-fad3502b1e07b546: crates/network/src/lib.rs crates/network/src/articulation.rs crates/network/src/components.rs crates/network/src/connect.rs crates/network/src/error.rs crates/network/src/graph.rs crates/network/src/mst.rs crates/network/src/paths.rs

crates/network/src/lib.rs:
crates/network/src/articulation.rs:
crates/network/src/components.rs:
crates/network/src/connect.rs:
crates/network/src/error.rs:
crates/network/src/graph.rs:
crates/network/src/mst.rs:
crates/network/src/paths.rs:
