/root/repo/target/debug/deps/fra-136c13a265e340f3.d: crates/bench/benches/fra.rs Cargo.toml

/root/repo/target/debug/deps/libfra-136c13a265e340f3.rmeta: crates/bench/benches/fra.rs Cargo.toml

crates/bench/benches/fra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
