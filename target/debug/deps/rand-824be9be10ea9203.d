/root/repo/target/debug/deps/rand-824be9be10ea9203.d: /root/depstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-824be9be10ea9203.rmeta: /root/depstubs/rand/src/lib.rs

/root/depstubs/rand/src/lib.rs:
