/root/repo/target/debug/deps/cps-70563ad774edaa60.d: src/lib.rs src/error.rs src/prelude.rs

/root/repo/target/debug/deps/libcps-70563ad774edaa60.rmeta: src/lib.rs src/error.rs src/prelude.rs

src/lib.rs:
src/error.rs:
src/prelude.rs:
