/root/repo/target/debug/deps/cps_field-ec7f69e83f934f0e.d: crates/field/src/lib.rs crates/field/src/analytic.rs crates/field/src/calculus.rs crates/field/src/delta.rs crates/field/src/dynamics.rs crates/field/src/error.rs crates/field/src/grid.rs crates/field/src/noise.rs crates/field/src/ops.rs crates/field/src/par.rs crates/field/src/reconstruct.rs crates/field/src/traits.rs

/root/repo/target/debug/deps/cps_field-ec7f69e83f934f0e: crates/field/src/lib.rs crates/field/src/analytic.rs crates/field/src/calculus.rs crates/field/src/delta.rs crates/field/src/dynamics.rs crates/field/src/error.rs crates/field/src/grid.rs crates/field/src/noise.rs crates/field/src/ops.rs crates/field/src/par.rs crates/field/src/reconstruct.rs crates/field/src/traits.rs

crates/field/src/lib.rs:
crates/field/src/analytic.rs:
crates/field/src/calculus.rs:
crates/field/src/delta.rs:
crates/field/src/dynamics.rs:
crates/field/src/error.rs:
crates/field/src/grid.rs:
crates/field/src/noise.rs:
crates/field/src/ops.rs:
crates/field/src/par.rs:
crates/field/src/reconstruct.rs:
crates/field/src/traits.rs:
