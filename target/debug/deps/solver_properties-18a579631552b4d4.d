/root/repo/target/debug/deps/solver_properties-18a579631552b4d4.d: crates/linalg/tests/solver_properties.rs

/root/repo/target/debug/deps/libsolver_properties-18a579631552b4d4.rmeta: crates/linalg/tests/solver_properties.rs

crates/linalg/tests/solver_properties.rs:
