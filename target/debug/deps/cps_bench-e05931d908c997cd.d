/root/repo/target/debug/deps/cps_bench-e05931d908c997cd.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcps_bench-e05931d908c997cd.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
