/root/repo/target/debug/deps/serde_json-e9e9d780af9ed834.d: /root/depstubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-e9e9d780af9ed834.rmeta: /root/depstubs/serde_json/src/lib.rs

/root/depstubs/serde_json/src/lib.rs:
