/root/repo/target/debug/deps/cps_field-a6907afb132a7a74.d: crates/field/src/lib.rs crates/field/src/analytic.rs crates/field/src/calculus.rs crates/field/src/delta.rs crates/field/src/dynamics.rs crates/field/src/error.rs crates/field/src/grid.rs crates/field/src/noise.rs crates/field/src/ops.rs crates/field/src/par.rs crates/field/src/reconstruct.rs crates/field/src/traits.rs

/root/repo/target/debug/deps/libcps_field-a6907afb132a7a74.rmeta: crates/field/src/lib.rs crates/field/src/analytic.rs crates/field/src/calculus.rs crates/field/src/delta.rs crates/field/src/dynamics.rs crates/field/src/error.rs crates/field/src/grid.rs crates/field/src/noise.rs crates/field/src/ops.rs crates/field/src/par.rs crates/field/src/reconstruct.rs crates/field/src/traits.rs

crates/field/src/lib.rs:
crates/field/src/analytic.rs:
crates/field/src/calculus.rs:
crates/field/src/delta.rs:
crates/field/src/dynamics.rs:
crates/field/src/error.rs:
crates/field/src/grid.rs:
crates/field/src/noise.rs:
crates/field/src/ops.rs:
crates/field/src/par.rs:
crates/field/src/reconstruct.rs:
crates/field/src/traits.rs:
