/root/repo/target/debug/deps/paper_claims-d0a30a9bdb30793f.d: tests/paper_claims.rs

/root/repo/target/debug/deps/libpaper_claims-d0a30a9bdb30793f.rmeta: tests/paper_claims.rs

tests/paper_claims.rs:
