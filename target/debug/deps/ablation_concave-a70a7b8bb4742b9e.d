/root/repo/target/debug/deps/ablation_concave-a70a7b8bb4742b9e.d: crates/bench/src/bin/ablation_concave.rs Cargo.toml

/root/repo/target/debug/deps/libablation_concave-a70a7b8bb4742b9e.rmeta: crates/bench/src/bin/ablation_concave.rs Cargo.toml

crates/bench/src/bin/ablation_concave.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
