/root/repo/target/debug/deps/fig7_fra_vs_random-4373d449c95dc4e7.d: crates/bench/src/bin/fig7_fra_vs_random.rs

/root/repo/target/debug/deps/libfig7_fra_vs_random-4373d449c95dc4e7.rmeta: crates/bench/src/bin/fig7_fra_vs_random.rs

crates/bench/src/bin/fig7_fra_vs_random.rs:
