/root/repo/target/debug/deps/sim_step-c1da963981b64b87.d: crates/bench/benches/sim_step.rs

/root/repo/target/debug/deps/libsim_step-c1da963981b64b87.rmeta: crates/bench/benches/sim_step.rs

crates/bench/benches/sim_step.rs:
