/root/repo/target/debug/deps/cps_cli-48c0e6eaa1541f1b.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libcps_cli-48c0e6eaa1541f1b.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
