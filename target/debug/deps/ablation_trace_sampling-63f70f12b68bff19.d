/root/repo/target/debug/deps/ablation_trace_sampling-63f70f12b68bff19.d: crates/bench/src/bin/ablation_trace_sampling.rs

/root/repo/target/debug/deps/libablation_trace_sampling-63f70f12b68bff19.rmeta: crates/bench/src/bin/ablation_trace_sampling.rs

crates/bench/src/bin/ablation_trace_sampling.rs:
