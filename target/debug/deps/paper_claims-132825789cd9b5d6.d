/root/repo/target/debug/deps/paper_claims-132825789cd9b5d6.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-132825789cd9b5d6: tests/paper_claims.rs

tests/paper_claims.rs:
