/root/repo/target/debug/deps/osd_small_optimality-24d5b331e2abc859.d: tests/osd_small_optimality.rs

/root/repo/target/debug/deps/osd_small_optimality-24d5b331e2abc859: tests/osd_small_optimality.rs

tests/osd_small_optimality.rs:
