/root/repo/target/debug/deps/cps_linalg-31121394f0714091.d: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/lstsq.rs crates/linalg/src/mat2.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/stats.rs crates/linalg/src/vector.rs

/root/repo/target/debug/deps/libcps_linalg-31121394f0714091.rmeta: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/lstsq.rs crates/linalg/src/mat2.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/stats.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/error.rs:
crates/linalg/src/lstsq.rs:
crates/linalg/src/mat2.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/stats.rs:
crates/linalg/src/vector.rs:
