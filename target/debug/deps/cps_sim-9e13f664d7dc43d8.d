/root/repo/target/debug/deps/cps_sim-9e13f664d7dc43d8.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/exploration.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/sampling.rs crates/sim/src/scenario.rs crates/sim/src/trajectory.rs Cargo.toml

/root/repo/target/debug/deps/libcps_sim-9e13f664d7dc43d8.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/exploration.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/sampling.rs crates/sim/src/scenario.rs crates/sim/src/trajectory.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/exploration.rs:
crates/sim/src/fault.rs:
crates/sim/src/metrics.rs:
crates/sim/src/sampling.rs:
crates/sim/src/scenario.rs:
crates/sim/src/trajectory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
