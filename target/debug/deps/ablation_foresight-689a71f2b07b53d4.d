/root/repo/target/debug/deps/ablation_foresight-689a71f2b07b53d4.d: crates/bench/src/bin/ablation_foresight.rs

/root/repo/target/debug/deps/libablation_foresight-689a71f2b07b53d4.rmeta: crates/bench/src/bin/ablation_foresight.rs

crates/bench/src/bin/ablation_foresight.rs:
