/root/repo/target/debug/deps/cps_sim-e41defaf0c3a3e67.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/exploration.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/sampling.rs crates/sim/src/scenario.rs crates/sim/src/trajectory.rs

/root/repo/target/debug/deps/libcps_sim-e41defaf0c3a3e67.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/exploration.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/sampling.rs crates/sim/src/scenario.rs crates/sim/src/trajectory.rs

/root/repo/target/debug/deps/libcps_sim-e41defaf0c3a3e67.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/exploration.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/sampling.rs crates/sim/src/scenario.rs crates/sim/src/trajectory.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/exploration.rs:
crates/sim/src/fault.rs:
crates/sim/src/metrics.rs:
crates/sim/src/sampling.rs:
crates/sim/src/scenario.rs:
crates/sim/src/trajectory.rs:
