/root/repo/target/debug/deps/ablation_beta-a06803c06ec5eb22.d: crates/bench/src/bin/ablation_beta.rs

/root/repo/target/debug/deps/ablation_beta-a06803c06ec5eb22: crates/bench/src/bin/ablation_beta.rs

crates/bench/src/bin/ablation_beta.rs:
