/root/repo/target/debug/deps/cps_bench-c4fe71d23867c6f4.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/cps_bench-c4fe71d23867c6f4: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
