/root/repo/target/debug/deps/cps-46555708809b73bb.d: src/lib.rs src/error.rs src/prelude.rs

/root/repo/target/debug/deps/libcps-46555708809b73bb.rlib: src/lib.rs src/error.rs src/prelude.rs

/root/repo/target/debug/deps/libcps-46555708809b73bb.rmeta: src/lib.rs src/error.rs src/prelude.rs

src/lib.rs:
src/error.rs:
src/prelude.rs:
