/root/repo/target/debug/deps/fig3_cwd_vs_uniform-5c30b81112f6e77e.d: crates/bench/src/bin/fig3_cwd_vs_uniform.rs

/root/repo/target/debug/deps/libfig3_cwd_vs_uniform-5c30b81112f6e77e.rmeta: crates/bench/src/bin/fig3_cwd_vs_uniform.rs

crates/bench/src/bin/fig3_cwd_vs_uniform.rs:
