/root/repo/target/debug/deps/paper_claims-f66b2d73f3f03114.d: tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-f66b2d73f3f03114.rmeta: tests/paper_claims.rs Cargo.toml

tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
