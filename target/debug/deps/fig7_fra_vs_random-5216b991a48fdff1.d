/root/repo/target/debug/deps/fig7_fra_vs_random-5216b991a48fdff1.d: crates/bench/src/bin/fig7_fra_vs_random.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_fra_vs_random-5216b991a48fdff1.rmeta: crates/bench/src/bin/fig7_fra_vs_random.rs Cargo.toml

crates/bench/src/bin/fig7_fra_vs_random.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
