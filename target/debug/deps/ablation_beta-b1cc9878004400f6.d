/root/repo/target/debug/deps/ablation_beta-b1cc9878004400f6.d: crates/bench/src/bin/ablation_beta.rs

/root/repo/target/debug/deps/libablation_beta-b1cc9878004400f6.rmeta: crates/bench/src/bin/ablation_beta.rs

crates/bench/src/bin/ablation_beta.rs:
