/root/repo/target/debug/deps/ablation_concave-696a3973e7de0013.d: crates/bench/src/bin/ablation_concave.rs

/root/repo/target/debug/deps/ablation_concave-696a3973e7de0013: crates/bench/src/bin/ablation_concave.rs

crates/bench/src/bin/ablation_concave.rs:
