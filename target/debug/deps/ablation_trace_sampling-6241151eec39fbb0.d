/root/repo/target/debug/deps/ablation_trace_sampling-6241151eec39fbb0.d: crates/bench/src/bin/ablation_trace_sampling.rs Cargo.toml

/root/repo/target/debug/deps/libablation_trace_sampling-6241151eec39fbb0.rmeta: crates/bench/src/bin/ablation_trace_sampling.rs Cargo.toml

crates/bench/src/bin/ablation_trace_sampling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
