/root/repo/target/debug/deps/fig8_10_cma_timeline-aa145e176a58fccc.d: crates/bench/src/bin/fig8_10_cma_timeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_10_cma_timeline-aa145e176a58fccc.rmeta: crates/bench/src/bin/fig8_10_cma_timeline.rs Cargo.toml

crates/bench/src/bin/fig8_10_cma_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
