/root/repo/target/debug/deps/fra_properties-e89653605870ca56.d: crates/core/tests/fra_properties.rs Cargo.toml

/root/repo/target/debug/deps/libfra_properties-e89653605870ca56.rmeta: crates/core/tests/fra_properties.rs Cargo.toml

crates/core/tests/fra_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
