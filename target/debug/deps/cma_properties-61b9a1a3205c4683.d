/root/repo/target/debug/deps/cma_properties-61b9a1a3205c4683.d: crates/core/tests/cma_properties.rs

/root/repo/target/debug/deps/cma_properties-61b9a1a3205c4683: crates/core/tests/cma_properties.rs

crates/core/tests/cma_properties.rs:
