/root/repo/target/debug/deps/serde_derive-8e4267f2e16b3b70.d: /root/depstubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-8e4267f2e16b3b70.so: /root/depstubs/serde_derive/src/lib.rs

/root/depstubs/serde_derive/src/lib.rs:
