/root/repo/target/debug/deps/swarm_scenarios-f1c4b9819ba577f6.d: crates/sim/tests/swarm_scenarios.rs

/root/repo/target/debug/deps/libswarm_scenarios-f1c4b9819ba577f6.rmeta: crates/sim/tests/swarm_scenarios.rs

crates/sim/tests/swarm_scenarios.rs:
