/root/repo/target/debug/deps/ablation_foresight-1d248d3bc789856d.d: crates/bench/src/bin/ablation_foresight.rs Cargo.toml

/root/repo/target/debug/deps/libablation_foresight-1d248d3bc789856d.rmeta: crates/bench/src/bin/ablation_foresight.rs Cargo.toml

crates/bench/src/bin/ablation_foresight.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
