/root/repo/target/debug/deps/delta-179f5061fa85b2fe.d: crates/bench/benches/delta.rs

/root/repo/target/debug/deps/libdelta-179f5061fa85b2fe.rmeta: crates/bench/benches/delta.rs

crates/bench/benches/delta.rs:
