/root/repo/target/debug/deps/cps_cli-a5c1c1e94d418e95.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libcps_cli-a5c1c1e94d418e95.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libcps_cli-a5c1c1e94d418e95.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
