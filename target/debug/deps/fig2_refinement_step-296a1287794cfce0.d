/root/repo/target/debug/deps/fig2_refinement_step-296a1287794cfce0.d: crates/bench/src/bin/fig2_refinement_step.rs

/root/repo/target/debug/deps/fig2_refinement_step-296a1287794cfce0: crates/bench/src/bin/fig2_refinement_step.rs

crates/bench/src/bin/fig2_refinement_step.rs:
