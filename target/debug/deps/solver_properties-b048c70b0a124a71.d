/root/repo/target/debug/deps/solver_properties-b048c70b0a124a71.d: crates/linalg/tests/solver_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsolver_properties-b048c70b0a124a71.rmeta: crates/linalg/tests/solver_properties.rs Cargo.toml

crates/linalg/tests/solver_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
