/root/repo/target/debug/deps/fra-5733bf6c65e2cbc9.d: crates/bench/benches/fra.rs

/root/repo/target/debug/deps/libfra-5733bf6c65e2cbc9.rmeta: crates/bench/benches/fra.rs

crates/bench/benches/fra.rs:
