/root/repo/target/debug/deps/trace_roundtrip-e13a2edbdda3c0bf.d: tests/trace_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_roundtrip-e13a2edbdda3c0bf.rmeta: tests/trace_roundtrip.rs Cargo.toml

tests/trace_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
