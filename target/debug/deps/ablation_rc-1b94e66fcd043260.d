/root/repo/target/debug/deps/ablation_rc-1b94e66fcd043260.d: crates/bench/src/bin/ablation_rc.rs Cargo.toml

/root/repo/target/debug/deps/libablation_rc-1b94e66fcd043260.rmeta: crates/bench/src/bin/ablation_rc.rs Cargo.toml

crates/bench/src/bin/ablation_rc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
