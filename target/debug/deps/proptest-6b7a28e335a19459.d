/root/repo/target/debug/deps/proptest-6b7a28e335a19459.d: /root/depstubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6b7a28e335a19459.rlib: /root/depstubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6b7a28e335a19459.rmeta: /root/depstubs/proptest/src/lib.rs

/root/depstubs/proptest/src/lib.rs:
