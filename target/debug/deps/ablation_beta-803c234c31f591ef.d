/root/repo/target/debug/deps/ablation_beta-803c234c31f591ef.d: crates/bench/src/bin/ablation_beta.rs Cargo.toml

/root/repo/target/debug/deps/libablation_beta-803c234c31f591ef.rmeta: crates/bench/src/bin/ablation_beta.rs Cargo.toml

crates/bench/src/bin/ablation_beta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
