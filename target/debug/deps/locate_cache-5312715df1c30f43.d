/root/repo/target/debug/deps/locate_cache-5312715df1c30f43.d: crates/geometry/tests/locate_cache.rs Cargo.toml

/root/repo/target/debug/deps/liblocate_cache-5312715df1c30f43.rmeta: crates/geometry/tests/locate_cache.rs Cargo.toml

crates/geometry/tests/locate_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
