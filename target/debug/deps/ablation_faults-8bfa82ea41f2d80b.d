/root/repo/target/debug/deps/ablation_faults-8bfa82ea41f2d80b.d: crates/bench/src/bin/ablation_faults.rs Cargo.toml

/root/repo/target/debug/deps/libablation_faults-8bfa82ea41f2d80b.rmeta: crates/bench/src/bin/ablation_faults.rs Cargo.toml

crates/bench/src/bin/ablation_faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
