/root/repo/target/debug/deps/delaunay_properties-1645a2564c9a8dca.d: crates/geometry/tests/delaunay_properties.rs Cargo.toml

/root/repo/target/debug/deps/libdelaunay_properties-1645a2564c9a8dca.rmeta: crates/geometry/tests/delaunay_properties.rs Cargo.toml

crates/geometry/tests/delaunay_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
