/root/repo/target/debug/deps/failure_injection-866cb6d448a958e6.d: tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-866cb6d448a958e6.rmeta: tests/failure_injection.rs Cargo.toml

tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
