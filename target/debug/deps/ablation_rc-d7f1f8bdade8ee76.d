/root/repo/target/debug/deps/ablation_rc-d7f1f8bdade8ee76.d: crates/bench/src/bin/ablation_rc.rs

/root/repo/target/debug/deps/ablation_rc-d7f1f8bdade8ee76: crates/bench/src/bin/ablation_rc.rs

crates/bench/src/bin/ablation_rc.rs:
