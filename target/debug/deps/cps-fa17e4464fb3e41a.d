/root/repo/target/debug/deps/cps-fa17e4464fb3e41a.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libcps-fa17e4464fb3e41a.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
