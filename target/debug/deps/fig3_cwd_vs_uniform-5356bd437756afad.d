/root/repo/target/debug/deps/fig3_cwd_vs_uniform-5356bd437756afad.d: crates/bench/src/bin/fig3_cwd_vs_uniform.rs

/root/repo/target/debug/deps/libfig3_cwd_vs_uniform-5356bd437756afad.rmeta: crates/bench/src/bin/fig3_cwd_vs_uniform.rs

crates/bench/src/bin/fig3_cwd_vs_uniform.rs:
