/root/repo/target/debug/deps/cps_core-2a2b8f6bb3af1572.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/coverage.rs crates/core/src/error.rs crates/core/src/evaluate.rs crates/core/src/osd/mod.rs crates/core/src/osd/baselines.rs crates/core/src/osd/fra.rs crates/core/src/osd/local_error.rs crates/core/src/ostd/mod.rs crates/core/src/ostd/curvature.rs crates/core/src/ostd/cwd.rs crates/core/src/ostd/forces.rs crates/core/src/ostd/lcm.rs crates/core/src/ostd/cma.rs crates/core/src/problem.rs crates/core/src/report.rs

/root/repo/target/debug/deps/libcps_core-2a2b8f6bb3af1572.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/coverage.rs crates/core/src/error.rs crates/core/src/evaluate.rs crates/core/src/osd/mod.rs crates/core/src/osd/baselines.rs crates/core/src/osd/fra.rs crates/core/src/osd/local_error.rs crates/core/src/ostd/mod.rs crates/core/src/ostd/curvature.rs crates/core/src/ostd/cwd.rs crates/core/src/ostd/forces.rs crates/core/src/ostd/lcm.rs crates/core/src/ostd/cma.rs crates/core/src/problem.rs crates/core/src/report.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/coverage.rs:
crates/core/src/error.rs:
crates/core/src/evaluate.rs:
crates/core/src/osd/mod.rs:
crates/core/src/osd/baselines.rs:
crates/core/src/osd/fra.rs:
crates/core/src/osd/local_error.rs:
crates/core/src/ostd/mod.rs:
crates/core/src/ostd/curvature.rs:
crates/core/src/ostd/cwd.rs:
crates/core/src/ostd/forces.rs:
crates/core/src/ostd/lcm.rs:
crates/core/src/ostd/cma.rs:
crates/core/src/problem.rs:
crates/core/src/report.rs:
