/root/repo/target/debug/deps/ablation_rc-0601e1ae8fb649b6.d: crates/bench/src/bin/ablation_rc.rs

/root/repo/target/debug/deps/libablation_rc-0601e1ae8fb649b6.rmeta: crates/bench/src/bin/ablation_rc.rs

crates/bench/src/bin/ablation_rc.rs:
