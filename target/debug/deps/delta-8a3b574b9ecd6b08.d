/root/repo/target/debug/deps/delta-8a3b574b9ecd6b08.d: crates/bench/benches/delta.rs Cargo.toml

/root/repo/target/debug/deps/libdelta-8a3b574b9ecd6b08.rmeta: crates/bench/benches/delta.rs Cargo.toml

crates/bench/benches/delta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
