/root/repo/target/debug/deps/cps_greenorbs-821374521b88e8ea.d: crates/greenorbs/src/lib.rs crates/greenorbs/src/csv.rs crates/greenorbs/src/dataset.rs crates/greenorbs/src/error.rs crates/greenorbs/src/generator.rs crates/greenorbs/src/records.rs crates/greenorbs/src/stats.rs

/root/repo/target/debug/deps/libcps_greenorbs-821374521b88e8ea.rmeta: crates/greenorbs/src/lib.rs crates/greenorbs/src/csv.rs crates/greenorbs/src/dataset.rs crates/greenorbs/src/error.rs crates/greenorbs/src/generator.rs crates/greenorbs/src/records.rs crates/greenorbs/src/stats.rs

crates/greenorbs/src/lib.rs:
crates/greenorbs/src/csv.rs:
crates/greenorbs/src/dataset.rs:
crates/greenorbs/src/error.rs:
crates/greenorbs/src/generator.rs:
crates/greenorbs/src/records.rs:
crates/greenorbs/src/stats.rs:
