/root/repo/target/debug/deps/fig8_10_cma_timeline-07a619b174c1899a.d: crates/bench/src/bin/fig8_10_cma_timeline.rs

/root/repo/target/debug/deps/libfig8_10_cma_timeline-07a619b174c1899a.rmeta: crates/bench/src/bin/fig8_10_cma_timeline.rs

crates/bench/src/bin/fig8_10_cma_timeline.rs:
