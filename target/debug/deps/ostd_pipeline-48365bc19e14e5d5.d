/root/repo/target/debug/deps/ostd_pipeline-48365bc19e14e5d5.d: tests/ostd_pipeline.rs

/root/repo/target/debug/deps/ostd_pipeline-48365bc19e14e5d5: tests/ostd_pipeline.rs

tests/ostd_pipeline.rs:
