/root/repo/target/debug/deps/end_to_end-8727fc92eb3cbe4e.d: crates/cli/tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-8727fc92eb3cbe4e.rmeta: crates/cli/tests/end_to_end.rs Cargo.toml

crates/cli/tests/end_to_end.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_cps=placeholder:cps
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
