/root/repo/target/debug/deps/cps-f3558d068d110482.d: src/lib.rs src/error.rs src/prelude.rs Cargo.toml

/root/repo/target/debug/deps/libcps-f3558d068d110482.rmeta: src/lib.rs src/error.rs src/prelude.rs Cargo.toml

src/lib.rs:
src/error.rs:
src/prelude.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
