/root/repo/target/debug/deps/bench_delta_json-0a4a9c6340749b8b.d: crates/bench/src/bin/bench_delta_json.rs Cargo.toml

/root/repo/target/debug/deps/libbench_delta_json-0a4a9c6340749b8b.rmeta: crates/bench/src/bin/bench_delta_json.rs Cargo.toml

crates/bench/src/bin/bench_delta_json.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
