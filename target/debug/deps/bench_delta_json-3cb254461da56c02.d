/root/repo/target/debug/deps/bench_delta_json-3cb254461da56c02.d: crates/bench/src/bin/bench_delta_json.rs

/root/repo/target/debug/deps/libbench_delta_json-3cb254461da56c02.rmeta: crates/bench/src/bin/bench_delta_json.rs

crates/bench/src/bin/bench_delta_json.rs:
