/root/repo/target/debug/deps/cma_step-f2256e6dea0b2497.d: crates/bench/benches/cma_step.rs

/root/repo/target/debug/deps/libcma_step-f2256e6dea0b2497.rmeta: crates/bench/benches/cma_step.rs

crates/bench/benches/cma_step.rs:
