/root/repo/target/debug/deps/fault_properties-ba0cb1268efaa6af.d: crates/sim/tests/fault_properties.rs Cargo.toml

/root/repo/target/debug/deps/libfault_properties-ba0cb1268efaa6af.rmeta: crates/sim/tests/fault_properties.rs Cargo.toml

crates/sim/tests/fault_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
