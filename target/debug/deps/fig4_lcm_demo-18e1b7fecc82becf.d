/root/repo/target/debug/deps/fig4_lcm_demo-18e1b7fecc82becf.d: crates/bench/src/bin/fig4_lcm_demo.rs

/root/repo/target/debug/deps/fig4_lcm_demo-18e1b7fecc82becf: crates/bench/src/bin/fig4_lcm_demo.rs

crates/bench/src/bin/fig4_lcm_demo.rs:
