/root/repo/target/debug/deps/cps_field-25b08ec169e03daf.d: crates/field/src/lib.rs crates/field/src/analytic.rs crates/field/src/calculus.rs crates/field/src/delta.rs crates/field/src/dynamics.rs crates/field/src/error.rs crates/field/src/grid.rs crates/field/src/noise.rs crates/field/src/ops.rs crates/field/src/par.rs crates/field/src/reconstruct.rs crates/field/src/traits.rs Cargo.toml

/root/repo/target/debug/deps/libcps_field-25b08ec169e03daf.rmeta: crates/field/src/lib.rs crates/field/src/analytic.rs crates/field/src/calculus.rs crates/field/src/delta.rs crates/field/src/dynamics.rs crates/field/src/error.rs crates/field/src/grid.rs crates/field/src/noise.rs crates/field/src/ops.rs crates/field/src/par.rs crates/field/src/reconstruct.rs crates/field/src/traits.rs Cargo.toml

crates/field/src/lib.rs:
crates/field/src/analytic.rs:
crates/field/src/calculus.rs:
crates/field/src/delta.rs:
crates/field/src/dynamics.rs:
crates/field/src/error.rs:
crates/field/src/grid.rs:
crates/field/src/noise.rs:
crates/field/src/ops.rs:
crates/field/src/par.rs:
crates/field/src/reconstruct.rs:
crates/field/src/traits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
