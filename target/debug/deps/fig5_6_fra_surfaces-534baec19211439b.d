/root/repo/target/debug/deps/fig5_6_fra_surfaces-534baec19211439b.d: crates/bench/src/bin/fig5_6_fra_surfaces.rs

/root/repo/target/debug/deps/libfig5_6_fra_surfaces-534baec19211439b.rmeta: crates/bench/src/bin/fig5_6_fra_surfaces.rs

crates/bench/src/bin/fig5_6_fra_surfaces.rs:
