/root/repo/target/debug/deps/cps-a62e162df9d8b901.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/libcps-a62e162df9d8b901.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
