/root/repo/target/debug/deps/cma_step-7919b1f4ad21d750.d: crates/bench/benches/cma_step.rs Cargo.toml

/root/repo/target/debug/deps/libcma_step-7919b1f4ad21d750.rmeta: crates/bench/benches/cma_step.rs Cargo.toml

crates/bench/benches/cma_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
