/root/repo/target/debug/deps/fig4_lcm_demo-e6a48f22bbb3fccf.d: crates/bench/src/bin/fig4_lcm_demo.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_lcm_demo-e6a48f22bbb3fccf.rmeta: crates/bench/src/bin/fig4_lcm_demo.rs Cargo.toml

crates/bench/src/bin/fig4_lcm_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
