/root/repo/target/debug/deps/fig4_lcm_demo-af2fdeb84845ccb5.d: crates/bench/src/bin/fig4_lcm_demo.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_lcm_demo-af2fdeb84845ccb5.rmeta: crates/bench/src/bin/fig4_lcm_demo.rs Cargo.toml

crates/bench/src/bin/fig4_lcm_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
