/root/repo/target/debug/deps/cps-d7491dca759de228.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/cps-d7491dca759de228: crates/cli/src/main.rs

crates/cli/src/main.rs:
