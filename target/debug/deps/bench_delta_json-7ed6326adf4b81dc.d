/root/repo/target/debug/deps/bench_delta_json-7ed6326adf4b81dc.d: crates/bench/src/bin/bench_delta_json.rs

/root/repo/target/debug/deps/bench_delta_json-7ed6326adf4b81dc: crates/bench/src/bin/bench_delta_json.rs

crates/bench/src/bin/bench_delta_json.rs:
