/root/repo/target/debug/deps/ablation_concave-a636462499b9bd1e.d: crates/bench/src/bin/ablation_concave.rs Cargo.toml

/root/repo/target/debug/deps/libablation_concave-a636462499b9bd1e.rmeta: crates/bench/src/bin/ablation_concave.rs Cargo.toml

crates/bench/src/bin/ablation_concave.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
