/root/repo/target/debug/deps/failure_injection-2ce721f7a7b2b7c3.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-2ce721f7a7b2b7c3: tests/failure_injection.rs

tests/failure_injection.rs:
