/root/repo/target/debug/deps/fig7_fra_vs_random-3534d72c5b5448cb.d: crates/bench/src/bin/fig7_fra_vs_random.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_fra_vs_random-3534d72c5b5448cb.rmeta: crates/bench/src/bin/fig7_fra_vs_random.rs Cargo.toml

crates/bench/src/bin/fig7_fra_vs_random.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
