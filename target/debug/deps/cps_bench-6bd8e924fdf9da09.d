/root/repo/target/debug/deps/cps_bench-6bd8e924fdf9da09.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcps_bench-6bd8e924fdf9da09.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
