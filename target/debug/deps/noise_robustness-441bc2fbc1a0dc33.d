/root/repo/target/debug/deps/noise_robustness-441bc2fbc1a0dc33.d: tests/noise_robustness.rs

/root/repo/target/debug/deps/noise_robustness-441bc2fbc1a0dc33: tests/noise_robustness.rs

tests/noise_robustness.rs:
