/root/repo/target/debug/deps/ablation_beta-b7b0508b342e3f89.d: crates/bench/src/bin/ablation_beta.rs Cargo.toml

/root/repo/target/debug/deps/libablation_beta-b7b0508b342e3f89.rmeta: crates/bench/src/bin/ablation_beta.rs Cargo.toml

crates/bench/src/bin/ablation_beta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
