/root/repo/target/debug/deps/fig1_reference_surface-3b4410508165c449.d: crates/bench/src/bin/fig1_reference_surface.rs

/root/repo/target/debug/deps/libfig1_reference_surface-3b4410508165c449.rmeta: crates/bench/src/bin/fig1_reference_surface.rs

crates/bench/src/bin/fig1_reference_surface.rs:
