/root/repo/target/debug/deps/cps_bench-c5a07f0b72d8ba50.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcps_bench-c5a07f0b72d8ba50.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
