/root/repo/target/debug/deps/cps_cli-8bca1e41a5ec9a51.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libcps_cli-8bca1e41a5ec9a51.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
