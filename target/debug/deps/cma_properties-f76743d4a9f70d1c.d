/root/repo/target/debug/deps/cma_properties-f76743d4a9f70d1c.d: crates/core/tests/cma_properties.rs

/root/repo/target/debug/deps/libcma_properties-f76743d4a9f70d1c.rmeta: crates/core/tests/cma_properties.rs

crates/core/tests/cma_properties.rs:
