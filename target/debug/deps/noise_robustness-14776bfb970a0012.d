/root/repo/target/debug/deps/noise_robustness-14776bfb970a0012.d: tests/noise_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libnoise_robustness-14776bfb970a0012.rmeta: tests/noise_robustness.rs Cargo.toml

tests/noise_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
