/root/repo/target/debug/deps/cps_network-e356600402879fae.d: crates/network/src/lib.rs crates/network/src/articulation.rs crates/network/src/components.rs crates/network/src/connect.rs crates/network/src/error.rs crates/network/src/graph.rs crates/network/src/mst.rs crates/network/src/paths.rs Cargo.toml

/root/repo/target/debug/deps/libcps_network-e356600402879fae.rmeta: crates/network/src/lib.rs crates/network/src/articulation.rs crates/network/src/components.rs crates/network/src/connect.rs crates/network/src/error.rs crates/network/src/graph.rs crates/network/src/mst.rs crates/network/src/paths.rs Cargo.toml

crates/network/src/lib.rs:
crates/network/src/articulation.rs:
crates/network/src/components.rs:
crates/network/src/connect.rs:
crates/network/src/error.rs:
crates/network/src/graph.rs:
crates/network/src/mst.rs:
crates/network/src/paths.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
