/root/repo/target/debug/deps/cps_viz-7f7e7ff3811b5cf0.d: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/pgm.rs crates/viz/src/svg.rs crates/viz/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libcps_viz-7f7e7ff3811b5cf0.rmeta: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/pgm.rs crates/viz/src/svg.rs crates/viz/src/topology.rs Cargo.toml

crates/viz/src/lib.rs:
crates/viz/src/ascii.rs:
crates/viz/src/csv.rs:
crates/viz/src/pgm.rs:
crates/viz/src/svg.rs:
crates/viz/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
