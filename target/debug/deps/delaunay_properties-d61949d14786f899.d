/root/repo/target/debug/deps/delaunay_properties-d61949d14786f899.d: crates/geometry/tests/delaunay_properties.rs

/root/repo/target/debug/deps/delaunay_properties-d61949d14786f899: crates/geometry/tests/delaunay_properties.rs

crates/geometry/tests/delaunay_properties.rs:
