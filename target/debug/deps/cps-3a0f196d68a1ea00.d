/root/repo/target/debug/deps/cps-3a0f196d68a1ea00.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libcps-3a0f196d68a1ea00.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
