/root/repo/target/debug/deps/ablation_channels-b301c24b95272278.d: crates/bench/src/bin/ablation_channels.rs

/root/repo/target/debug/deps/ablation_channels-b301c24b95272278: crates/bench/src/bin/ablation_channels.rs

crates/bench/src/bin/ablation_channels.rs:
