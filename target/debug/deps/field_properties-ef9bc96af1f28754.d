/root/repo/target/debug/deps/field_properties-ef9bc96af1f28754.d: crates/field/tests/field_properties.rs

/root/repo/target/debug/deps/libfield_properties-ef9bc96af1f28754.rmeta: crates/field/tests/field_properties.rs

crates/field/tests/field_properties.rs:
