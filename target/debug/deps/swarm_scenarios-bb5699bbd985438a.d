/root/repo/target/debug/deps/swarm_scenarios-bb5699bbd985438a.d: crates/sim/tests/swarm_scenarios.rs

/root/repo/target/debug/deps/swarm_scenarios-bb5699bbd985438a: crates/sim/tests/swarm_scenarios.rs

crates/sim/tests/swarm_scenarios.rs:
