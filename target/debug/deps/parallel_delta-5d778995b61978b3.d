/root/repo/target/debug/deps/parallel_delta-5d778995b61978b3.d: crates/field/tests/parallel_delta.rs

/root/repo/target/debug/deps/libparallel_delta-5d778995b61978b3.rmeta: crates/field/tests/parallel_delta.rs

crates/field/tests/parallel_delta.rs:
