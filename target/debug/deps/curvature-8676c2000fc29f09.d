/root/repo/target/debug/deps/curvature-8676c2000fc29f09.d: crates/bench/benches/curvature.rs

/root/repo/target/debug/deps/libcurvature-8676c2000fc29f09.rmeta: crates/bench/benches/curvature.rs

crates/bench/benches/curvature.rs:
