/root/repo/target/debug/deps/delaunay_properties-2e79c0b666754a02.d: crates/geometry/tests/delaunay_properties.rs

/root/repo/target/debug/deps/libdelaunay_properties-2e79c0b666754a02.rmeta: crates/geometry/tests/delaunay_properties.rs

crates/geometry/tests/delaunay_properties.rs:
