/root/repo/target/debug/deps/survivability-87912c7628635f92.d: tests/survivability.rs Cargo.toml

/root/repo/target/debug/deps/libsurvivability-87912c7628635f92.rmeta: tests/survivability.rs Cargo.toml

tests/survivability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
