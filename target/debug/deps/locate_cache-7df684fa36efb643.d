/root/repo/target/debug/deps/locate_cache-7df684fa36efb643.d: crates/geometry/tests/locate_cache.rs

/root/repo/target/debug/deps/liblocate_cache-7df684fa36efb643.rmeta: crates/geometry/tests/locate_cache.rs

crates/geometry/tests/locate_cache.rs:
