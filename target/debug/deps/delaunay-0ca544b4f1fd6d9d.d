/root/repo/target/debug/deps/delaunay-0ca544b4f1fd6d9d.d: crates/bench/benches/delaunay.rs

/root/repo/target/debug/deps/libdelaunay-0ca544b4f1fd6d9d.rmeta: crates/bench/benches/delaunay.rs

crates/bench/benches/delaunay.rs:
