/root/repo/target/debug/deps/curvature-b6c9f83be0dae7c2.d: crates/bench/benches/curvature.rs Cargo.toml

/root/repo/target/debug/deps/libcurvature-b6c9f83be0dae7c2.rmeta: crates/bench/benches/curvature.rs Cargo.toml

crates/bench/benches/curvature.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
