/root/repo/target/debug/deps/failure_injection-5cb7761aa25145d7.d: tests/failure_injection.rs

/root/repo/target/debug/deps/libfailure_injection-5cb7761aa25145d7.rmeta: tests/failure_injection.rs

tests/failure_injection.rs:
