/root/repo/target/debug/deps/ablation_beta-6a41429074e46d71.d: crates/bench/src/bin/ablation_beta.rs

/root/repo/target/debug/deps/libablation_beta-6a41429074e46d71.rmeta: crates/bench/src/bin/ablation_beta.rs

crates/bench/src/bin/ablation_beta.rs:
