/root/repo/target/debug/deps/fig7_fra_vs_random-47551eec7d1e35e4.d: crates/bench/src/bin/fig7_fra_vs_random.rs

/root/repo/target/debug/deps/libfig7_fra_vs_random-47551eec7d1e35e4.rmeta: crates/bench/src/bin/fig7_fra_vs_random.rs

crates/bench/src/bin/fig7_fra_vs_random.rs:
