/root/repo/target/debug/deps/ablation_faults-4201bd9956b04e2c.d: crates/bench/src/bin/ablation_faults.rs Cargo.toml

/root/repo/target/debug/deps/libablation_faults-4201bd9956b04e2c.rmeta: crates/bench/src/bin/ablation_faults.rs Cargo.toml

crates/bench/src/bin/ablation_faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
