/root/repo/target/debug/deps/serde-a31df972d98a875e.d: /root/depstubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-a31df972d98a875e.rmeta: /root/depstubs/serde/src/lib.rs

/root/depstubs/serde/src/lib.rs:
