/root/repo/target/debug/deps/fra_properties-f35c650c83bd8dc2.d: crates/core/tests/fra_properties.rs

/root/repo/target/debug/deps/fra_properties-f35c650c83bd8dc2: crates/core/tests/fra_properties.rs

crates/core/tests/fra_properties.rs:
