/root/repo/target/debug/deps/trace_roundtrip-d008360a35283114.d: tests/trace_roundtrip.rs

/root/repo/target/debug/deps/libtrace_roundtrip-d008360a35283114.rmeta: tests/trace_roundtrip.rs

tests/trace_roundtrip.rs:
