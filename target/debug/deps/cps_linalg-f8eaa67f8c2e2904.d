/root/repo/target/debug/deps/cps_linalg-f8eaa67f8c2e2904.d: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/lstsq.rs crates/linalg/src/mat2.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/stats.rs crates/linalg/src/vector.rs Cargo.toml

/root/repo/target/debug/deps/libcps_linalg-f8eaa67f8c2e2904.rmeta: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/lstsq.rs crates/linalg/src/mat2.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/stats.rs crates/linalg/src/vector.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/error.rs:
crates/linalg/src/lstsq.rs:
crates/linalg/src/mat2.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/stats.rs:
crates/linalg/src/vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
