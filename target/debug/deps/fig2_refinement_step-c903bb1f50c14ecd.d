/root/repo/target/debug/deps/fig2_refinement_step-c903bb1f50c14ecd.d: crates/bench/src/bin/fig2_refinement_step.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_refinement_step-c903bb1f50c14ecd.rmeta: crates/bench/src/bin/fig2_refinement_step.rs Cargo.toml

crates/bench/src/bin/fig2_refinement_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
