/root/repo/target/debug/deps/fig1_reference_surface-966035e2840ee1da.d: crates/bench/src/bin/fig1_reference_surface.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_reference_surface-966035e2840ee1da.rmeta: crates/bench/src/bin/fig1_reference_surface.rs Cargo.toml

crates/bench/src/bin/fig1_reference_surface.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
