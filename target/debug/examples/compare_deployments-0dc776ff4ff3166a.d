/root/repo/target/debug/examples/compare_deployments-0dc776ff4ff3166a.d: examples/compare_deployments.rs

/root/repo/target/debug/examples/libcompare_deployments-0dc776ff4ff3166a.rmeta: examples/compare_deployments.rs

examples/compare_deployments.rs:
