/root/repo/target/debug/examples/mobile_exploration-3d9ac2c4143be1de.d: examples/mobile_exploration.rs

/root/repo/target/debug/examples/mobile_exploration-3d9ac2c4143be1de: examples/mobile_exploration.rs

examples/mobile_exploration.rs:
