/root/repo/target/debug/examples/forest_monitoring-08a488239c7ff752.d: examples/forest_monitoring.rs

/root/repo/target/debug/examples/libforest_monitoring-08a488239c7ff752.rmeta: examples/forest_monitoring.rs

examples/forest_monitoring.rs:
