/root/repo/target/debug/examples/compare_deployments-2e8e3ded7a04cbaa.d: examples/compare_deployments.rs Cargo.toml

/root/repo/target/debug/examples/libcompare_deployments-2e8e3ded7a04cbaa.rmeta: examples/compare_deployments.rs Cargo.toml

examples/compare_deployments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
