/root/repo/target/debug/examples/compare_deployments-d59c3b6fb6bb09f9.d: examples/compare_deployments.rs

/root/repo/target/debug/examples/compare_deployments-d59c3b6fb6bb09f9: examples/compare_deployments.rs

examples/compare_deployments.rs:
