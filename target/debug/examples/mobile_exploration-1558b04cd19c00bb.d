/root/repo/target/debug/examples/mobile_exploration-1558b04cd19c00bb.d: examples/mobile_exploration.rs Cargo.toml

/root/repo/target/debug/examples/libmobile_exploration-1558b04cd19c00bb.rmeta: examples/mobile_exploration.rs Cargo.toml

examples/mobile_exploration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
