/root/repo/target/debug/examples/mobile_exploration-557c98c505c130f4.d: examples/mobile_exploration.rs

/root/repo/target/debug/examples/libmobile_exploration-557c98c505c130f4.rmeta: examples/mobile_exploration.rs

examples/mobile_exploration.rs:
