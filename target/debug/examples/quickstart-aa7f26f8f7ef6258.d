/root/repo/target/debug/examples/quickstart-aa7f26f8f7ef6258.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-aa7f26f8f7ef6258: examples/quickstart.rs

examples/quickstart.rs:
