/root/repo/target/debug/examples/quickstart-ce8d2461059a027c.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-ce8d2461059a027c.rmeta: examples/quickstart.rs

examples/quickstart.rs:
