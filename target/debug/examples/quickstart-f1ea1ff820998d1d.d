/root/repo/target/debug/examples/quickstart-f1ea1ff820998d1d.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-f1ea1ff820998d1d.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
