/root/repo/target/debug/examples/forest_monitoring-b787b30ffc11fd7d.d: examples/forest_monitoring.rs

/root/repo/target/debug/examples/forest_monitoring-b787b30ffc11fd7d: examples/forest_monitoring.rs

examples/forest_monitoring.rs:
