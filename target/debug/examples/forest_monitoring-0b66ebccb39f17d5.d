/root/repo/target/debug/examples/forest_monitoring-0b66ebccb39f17d5.d: examples/forest_monitoring.rs Cargo.toml

/root/repo/target/debug/examples/libforest_monitoring-0b66ebccb39f17d5.rmeta: examples/forest_monitoring.rs Cargo.toml

examples/forest_monitoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
