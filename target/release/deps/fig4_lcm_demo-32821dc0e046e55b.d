/root/repo/target/release/deps/fig4_lcm_demo-32821dc0e046e55b.d: crates/bench/src/bin/fig4_lcm_demo.rs

/root/repo/target/release/deps/fig4_lcm_demo-32821dc0e046e55b: crates/bench/src/bin/fig4_lcm_demo.rs

crates/bench/src/bin/fig4_lcm_demo.rs:
