/root/repo/target/release/deps/ablation_channels-48a1f5f6d0d01faf.d: crates/bench/src/bin/ablation_channels.rs

/root/repo/target/release/deps/ablation_channels-48a1f5f6d0d01faf: crates/bench/src/bin/ablation_channels.rs

crates/bench/src/bin/ablation_channels.rs:
