/root/repo/target/release/deps/ablation_faults-7953099519beae1b.d: crates/bench/src/bin/ablation_faults.rs

/root/repo/target/release/deps/ablation_faults-7953099519beae1b: crates/bench/src/bin/ablation_faults.rs

crates/bench/src/bin/ablation_faults.rs:
