/root/repo/target/release/deps/fig8_10_cma_timeline-14c85a488525e8a7.d: crates/bench/src/bin/fig8_10_cma_timeline.rs

/root/repo/target/release/deps/fig8_10_cma_timeline-14c85a488525e8a7: crates/bench/src/bin/fig8_10_cma_timeline.rs

crates/bench/src/bin/fig8_10_cma_timeline.rs:
