/root/repo/target/release/deps/cps_bench-6e0a31536966868e.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcps_bench-6e0a31536966868e.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcps_bench-6e0a31536966868e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
