/root/repo/target/release/deps/ablation_trace_sampling-1040dab8100f0cc0.d: crates/bench/src/bin/ablation_trace_sampling.rs

/root/repo/target/release/deps/ablation_trace_sampling-1040dab8100f0cc0: crates/bench/src/bin/ablation_trace_sampling.rs

crates/bench/src/bin/ablation_trace_sampling.rs:
