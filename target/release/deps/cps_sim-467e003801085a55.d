/root/repo/target/release/deps/cps_sim-467e003801085a55.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/exploration.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/sampling.rs crates/sim/src/scenario.rs crates/sim/src/trajectory.rs

/root/repo/target/release/deps/libcps_sim-467e003801085a55.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/exploration.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/sampling.rs crates/sim/src/scenario.rs crates/sim/src/trajectory.rs

/root/repo/target/release/deps/libcps_sim-467e003801085a55.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/exploration.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/sampling.rs crates/sim/src/scenario.rs crates/sim/src/trajectory.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/exploration.rs:
crates/sim/src/fault.rs:
crates/sim/src/metrics.rs:
crates/sim/src/sampling.rs:
crates/sim/src/scenario.rs:
crates/sim/src/trajectory.rs:
