/root/repo/target/release/deps/cps-b10b3db0c93e9256.d: crates/cli/src/main.rs

/root/repo/target/release/deps/cps-b10b3db0c93e9256: crates/cli/src/main.rs

crates/cli/src/main.rs:
