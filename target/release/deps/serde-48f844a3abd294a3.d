/root/repo/target/release/deps/serde-48f844a3abd294a3.d: /root/depstubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-48f844a3abd294a3.rlib: /root/depstubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-48f844a3abd294a3.rmeta: /root/depstubs/serde/src/lib.rs

/root/depstubs/serde/src/lib.rs:
