/root/repo/target/release/deps/fig3_cwd_vs_uniform-1ced878ec20c9158.d: crates/bench/src/bin/fig3_cwd_vs_uniform.rs

/root/repo/target/release/deps/fig3_cwd_vs_uniform-1ced878ec20c9158: crates/bench/src/bin/fig3_cwd_vs_uniform.rs

crates/bench/src/bin/fig3_cwd_vs_uniform.rs:
