/root/repo/target/release/deps/cps_geometry-9f2eca6974519b1b.d: crates/geometry/src/lib.rs crates/geometry/src/delaunay.rs crates/geometry/src/error.rs crates/geometry/src/hull.rs crates/geometry/src/index.rs crates/geometry/src/point.rs crates/geometry/src/polygon.rs crates/geometry/src/predicates.rs crates/geometry/src/region.rs crates/geometry/src/triangle.rs crates/geometry/src/voronoi.rs

/root/repo/target/release/deps/libcps_geometry-9f2eca6974519b1b.rlib: crates/geometry/src/lib.rs crates/geometry/src/delaunay.rs crates/geometry/src/error.rs crates/geometry/src/hull.rs crates/geometry/src/index.rs crates/geometry/src/point.rs crates/geometry/src/polygon.rs crates/geometry/src/predicates.rs crates/geometry/src/region.rs crates/geometry/src/triangle.rs crates/geometry/src/voronoi.rs

/root/repo/target/release/deps/libcps_geometry-9f2eca6974519b1b.rmeta: crates/geometry/src/lib.rs crates/geometry/src/delaunay.rs crates/geometry/src/error.rs crates/geometry/src/hull.rs crates/geometry/src/index.rs crates/geometry/src/point.rs crates/geometry/src/polygon.rs crates/geometry/src/predicates.rs crates/geometry/src/region.rs crates/geometry/src/triangle.rs crates/geometry/src/voronoi.rs

crates/geometry/src/lib.rs:
crates/geometry/src/delaunay.rs:
crates/geometry/src/error.rs:
crates/geometry/src/hull.rs:
crates/geometry/src/index.rs:
crates/geometry/src/point.rs:
crates/geometry/src/polygon.rs:
crates/geometry/src/predicates.rs:
crates/geometry/src/region.rs:
crates/geometry/src/triangle.rs:
crates/geometry/src/voronoi.rs:
