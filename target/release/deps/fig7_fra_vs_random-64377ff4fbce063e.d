/root/repo/target/release/deps/fig7_fra_vs_random-64377ff4fbce063e.d: crates/bench/src/bin/fig7_fra_vs_random.rs

/root/repo/target/release/deps/fig7_fra_vs_random-64377ff4fbce063e: crates/bench/src/bin/fig7_fra_vs_random.rs

crates/bench/src/bin/fig7_fra_vs_random.rs:
