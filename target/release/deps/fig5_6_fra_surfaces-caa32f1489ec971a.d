/root/repo/target/release/deps/fig5_6_fra_surfaces-caa32f1489ec971a.d: crates/bench/src/bin/fig5_6_fra_surfaces.rs

/root/repo/target/release/deps/fig5_6_fra_surfaces-caa32f1489ec971a: crates/bench/src/bin/fig5_6_fra_surfaces.rs

crates/bench/src/bin/fig5_6_fra_surfaces.rs:
