/root/repo/target/release/deps/bench_delta_json-eb4c8bfa4614e192.d: crates/bench/src/bin/bench_delta_json.rs

/root/repo/target/release/deps/bench_delta_json-eb4c8bfa4614e192: crates/bench/src/bin/bench_delta_json.rs

crates/bench/src/bin/bench_delta_json.rs:
