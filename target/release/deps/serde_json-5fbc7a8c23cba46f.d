/root/repo/target/release/deps/serde_json-5fbc7a8c23cba46f.d: /root/depstubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-5fbc7a8c23cba46f.rlib: /root/depstubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-5fbc7a8c23cba46f.rmeta: /root/depstubs/serde_json/src/lib.rs

/root/depstubs/serde_json/src/lib.rs:
