/root/repo/target/release/deps/ablation_rc-2cec2290e3165b68.d: crates/bench/src/bin/ablation_rc.rs

/root/repo/target/release/deps/ablation_rc-2cec2290e3165b68: crates/bench/src/bin/ablation_rc.rs

crates/bench/src/bin/ablation_rc.rs:
