/root/repo/target/release/deps/cps_greenorbs-803c3285235e54da.d: crates/greenorbs/src/lib.rs crates/greenorbs/src/csv.rs crates/greenorbs/src/dataset.rs crates/greenorbs/src/error.rs crates/greenorbs/src/generator.rs crates/greenorbs/src/records.rs crates/greenorbs/src/stats.rs

/root/repo/target/release/deps/libcps_greenorbs-803c3285235e54da.rlib: crates/greenorbs/src/lib.rs crates/greenorbs/src/csv.rs crates/greenorbs/src/dataset.rs crates/greenorbs/src/error.rs crates/greenorbs/src/generator.rs crates/greenorbs/src/records.rs crates/greenorbs/src/stats.rs

/root/repo/target/release/deps/libcps_greenorbs-803c3285235e54da.rmeta: crates/greenorbs/src/lib.rs crates/greenorbs/src/csv.rs crates/greenorbs/src/dataset.rs crates/greenorbs/src/error.rs crates/greenorbs/src/generator.rs crates/greenorbs/src/records.rs crates/greenorbs/src/stats.rs

crates/greenorbs/src/lib.rs:
crates/greenorbs/src/csv.rs:
crates/greenorbs/src/dataset.rs:
crates/greenorbs/src/error.rs:
crates/greenorbs/src/generator.rs:
crates/greenorbs/src/records.rs:
crates/greenorbs/src/stats.rs:
