/root/repo/target/release/deps/cps-15ae46099ec921cf.d: src/lib.rs src/error.rs src/prelude.rs

/root/repo/target/release/deps/libcps-15ae46099ec921cf.rlib: src/lib.rs src/error.rs src/prelude.rs

/root/repo/target/release/deps/libcps-15ae46099ec921cf.rmeta: src/lib.rs src/error.rs src/prelude.rs

src/lib.rs:
src/error.rs:
src/prelude.rs:
