/root/repo/target/release/deps/ablation_concave-ac8903d36e931691.d: crates/bench/src/bin/ablation_concave.rs

/root/repo/target/release/deps/ablation_concave-ac8903d36e931691: crates/bench/src/bin/ablation_concave.rs

crates/bench/src/bin/ablation_concave.rs:
