/root/repo/target/release/deps/ablation_beta-59a59f8e52982be3.d: crates/bench/src/bin/ablation_beta.rs

/root/repo/target/release/deps/ablation_beta-59a59f8e52982be3: crates/bench/src/bin/ablation_beta.rs

crates/bench/src/bin/ablation_beta.rs:
