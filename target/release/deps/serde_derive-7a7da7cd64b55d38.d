/root/repo/target/release/deps/serde_derive-7a7da7cd64b55d38.d: /root/depstubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-7a7da7cd64b55d38.so: /root/depstubs/serde_derive/src/lib.rs

/root/depstubs/serde_derive/src/lib.rs:
