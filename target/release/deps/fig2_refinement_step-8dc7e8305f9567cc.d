/root/repo/target/release/deps/fig2_refinement_step-8dc7e8305f9567cc.d: crates/bench/src/bin/fig2_refinement_step.rs

/root/repo/target/release/deps/fig2_refinement_step-8dc7e8305f9567cc: crates/bench/src/bin/fig2_refinement_step.rs

crates/bench/src/bin/fig2_refinement_step.rs:
