/root/repo/target/release/deps/cps_network-2650cc507d4555a2.d: crates/network/src/lib.rs crates/network/src/articulation.rs crates/network/src/components.rs crates/network/src/connect.rs crates/network/src/error.rs crates/network/src/graph.rs crates/network/src/mst.rs crates/network/src/paths.rs

/root/repo/target/release/deps/libcps_network-2650cc507d4555a2.rlib: crates/network/src/lib.rs crates/network/src/articulation.rs crates/network/src/components.rs crates/network/src/connect.rs crates/network/src/error.rs crates/network/src/graph.rs crates/network/src/mst.rs crates/network/src/paths.rs

/root/repo/target/release/deps/libcps_network-2650cc507d4555a2.rmeta: crates/network/src/lib.rs crates/network/src/articulation.rs crates/network/src/components.rs crates/network/src/connect.rs crates/network/src/error.rs crates/network/src/graph.rs crates/network/src/mst.rs crates/network/src/paths.rs

crates/network/src/lib.rs:
crates/network/src/articulation.rs:
crates/network/src/components.rs:
crates/network/src/connect.rs:
crates/network/src/error.rs:
crates/network/src/graph.rs:
crates/network/src/mst.rs:
crates/network/src/paths.rs:
