/root/repo/target/release/deps/fig1_reference_surface-67787d861cb6db17.d: crates/bench/src/bin/fig1_reference_surface.rs

/root/repo/target/release/deps/fig1_reference_surface-67787d861cb6db17: crates/bench/src/bin/fig1_reference_surface.rs

crates/bench/src/bin/fig1_reference_surface.rs:
