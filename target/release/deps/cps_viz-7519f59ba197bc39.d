/root/repo/target/release/deps/cps_viz-7519f59ba197bc39.d: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/pgm.rs crates/viz/src/svg.rs crates/viz/src/topology.rs

/root/repo/target/release/deps/libcps_viz-7519f59ba197bc39.rlib: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/pgm.rs crates/viz/src/svg.rs crates/viz/src/topology.rs

/root/repo/target/release/deps/libcps_viz-7519f59ba197bc39.rmeta: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/csv.rs crates/viz/src/pgm.rs crates/viz/src/svg.rs crates/viz/src/topology.rs

crates/viz/src/lib.rs:
crates/viz/src/ascii.rs:
crates/viz/src/csv.rs:
crates/viz/src/pgm.rs:
crates/viz/src/svg.rs:
crates/viz/src/topology.rs:
