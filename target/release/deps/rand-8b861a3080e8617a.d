/root/repo/target/release/deps/rand-8b861a3080e8617a.d: /root/depstubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-8b861a3080e8617a.rlib: /root/depstubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-8b861a3080e8617a.rmeta: /root/depstubs/rand/src/lib.rs

/root/depstubs/rand/src/lib.rs:
