/root/repo/target/release/deps/cps_linalg-9f54589fbfe009ba.d: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/lstsq.rs crates/linalg/src/mat2.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/stats.rs crates/linalg/src/vector.rs

/root/repo/target/release/deps/libcps_linalg-9f54589fbfe009ba.rlib: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/lstsq.rs crates/linalg/src/mat2.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/stats.rs crates/linalg/src/vector.rs

/root/repo/target/release/deps/libcps_linalg-9f54589fbfe009ba.rmeta: crates/linalg/src/lib.rs crates/linalg/src/error.rs crates/linalg/src/lstsq.rs crates/linalg/src/mat2.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs crates/linalg/src/solve.rs crates/linalg/src/stats.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/error.rs:
crates/linalg/src/lstsq.rs:
crates/linalg/src/mat2.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/stats.rs:
crates/linalg/src/vector.rs:
