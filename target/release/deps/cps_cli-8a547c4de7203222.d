/root/repo/target/release/deps/cps_cli-8a547c4de7203222.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libcps_cli-8a547c4de7203222.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libcps_cli-8a547c4de7203222.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
