/root/repo/target/release/deps/ablation_foresight-c21c23a5b8289697.d: crates/bench/src/bin/ablation_foresight.rs

/root/repo/target/release/deps/ablation_foresight-c21c23a5b8289697: crates/bench/src/bin/ablation_foresight.rs

crates/bench/src/bin/ablation_foresight.rs:
